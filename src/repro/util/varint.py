"""Unsigned varint encoding, wire-compatible with LevelDB/protobuf.

Each byte carries 7 payload bits; the high bit marks continuation.  Varints
keep small lengths (the common case for key/value sizes) to one byte, which
is what makes the sstable block format compact.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import CorruptionError

_MAX_U32 = (1 << 32) - 1
_MAX_U64 = (1 << 64) - 1


def encode_varint32(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**32) as a varint."""
    if not 0 <= value <= _MAX_U32:
        raise ValueError(f"varint32 out of range: {value}")
    return _encode(value)


def encode_varint64(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**64) as a varint."""
    if not 0 <= value <= _MAX_U64:
        raise ValueError(f"varint64 out of range: {value}")
    return _encode(value)


def _encode(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint32(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint32 from ``buf`` at ``offset``.

    Returns ``(value, new_offset)``.  Raises :class:`CorruptionError` on a
    truncated or overlong encoding.
    """
    value, offset = _decode(buf, offset, max_bytes=5)
    if value > _MAX_U32:
        raise CorruptionError("varint32 overflow")
    return value, offset


def decode_varint64(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint64 from ``buf`` at ``offset``; see decode_varint32."""
    return _decode(buf, offset, max_bytes=10)


def _decode(buf: bytes, offset: int, max_bytes: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    for i in range(max_bytes):
        pos = offset + i
        if pos >= len(buf):
            raise CorruptionError("truncated varint")
        byte = buf[pos]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos + 1
        shift += 7
    raise CorruptionError("varint too long")

"""Unsigned varint encoding, wire-compatible with LevelDB/protobuf.

Each byte carries 7 payload bits; the high bit marks continuation.  Varints
keep small lengths (the common case for key/value sizes) to one byte, which
is what makes the sstable block format compact.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import CorruptionError

_MAX_U32 = (1 << 32) - 1
_MAX_U64 = (1 << 64) - 1


def encode_varint32(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**32) as a varint."""
    if not 0 <= value <= _MAX_U32:
        raise ValueError(f"varint32 out of range: {value}")
    return _encode(value)


def encode_varint64(value: int) -> bytes:
    """Encode ``value`` (0 <= value < 2**64) as a varint."""
    if not 0 <= value <= _MAX_U64:
        raise ValueError(f"varint64 out of range: {value}")
    return _encode(value)


def _encode(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint32(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint32 from ``buf`` at ``offset``.

    Returns ``(value, new_offset)``.  Raises :class:`CorruptionError` on a
    truncated or overlong encoding.
    """
    value, offset = _decode(buf, offset, max_bytes=5)
    if value > _MAX_U32:
        raise CorruptionError("varint32 overflow")
    return value, offset


def decode_varint64(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint64 from ``buf`` at ``offset``; see decode_varint32."""
    return _decode(buf, offset, max_bytes=10)


def decode_varint_run(buf, offset: int, count: int) -> Tuple[List[int], int]:
    """Decode ``count`` consecutive varint64s starting at ``offset``.

    The batched form of :func:`decode_varint64`: one call decodes a *run*
    of adjacent varints (index-block entries, frame headers) without the
    per-value function-call overhead of the scalar decoders.  The single-
    byte case — by far the most common for lengths and small ids — is
    inlined.  Accepts ``bytes`` or ``memoryview``.

    Returns ``(values, new_offset)``.  Raises :class:`CorruptionError` on
    truncation or an overlong (> 10 byte) encoding, exactly where the
    scalar decoder would: values decoded before the damage are discarded.
    """
    if count < 0:
        raise ValueError(f"varint run count must be >= 0: {count}")
    values: List[int] = []
    append = values.append
    end = len(buf)
    for _ in range(count):
        if offset >= end:
            raise CorruptionError("truncated varint")
        byte = buf[offset]
        if byte < 0x80:  # single-byte fast path
            append(byte)
            offset += 1
            continue
        result = byte & 0x7F
        shift = 7
        offset += 1
        while True:
            if shift >= 70:
                raise CorruptionError("varint too long")
            if offset >= end:
                raise CorruptionError("truncated varint")
            byte = buf[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        append(result)
    return values, offset


def _decode(buf: bytes, offset: int, max_bytes: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    for i in range(max_bytes):
        pos = offset + i
        if pos >= len(buf):
            raise CorruptionError("truncated varint")
        byte = buf[pos]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos + 1
        shift += 7
    raise CorruptionError("varint too long")

"""Pure-Python MurmurHash3.

PebblesDB hashes every inserted key with MurmurHash and inspects the least
significant bits of the digest to decide whether the key becomes a guard
(paper section 4.4).  We implement MurmurHash3 x86 32-bit exactly (same test
vectors as the reference smhasher implementation) so guard selection has the
same statistical properties the paper relies on, and derive a 64-bit variant
by hashing with two seeds for uses that need more bits (bloom filters).
"""

from __future__ import annotations

_U32 = 0xFFFFFFFF

_C1 = 0xCC9E2D51
_C2 = 0x1B873593


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _U32


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _U32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _U32
    h ^= h >> 16
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 x86 32-bit of ``data`` with ``seed``."""
    length = len(data)
    nblocks = length // 4
    h1 = seed & _U32

    for i in range(nblocks):
        k1 = int.from_bytes(data[4 * i : 4 * i + 4], "little")
        k1 = (k1 * _C1) & _U32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _U32
        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _U32

    tail = data[nblocks * 4 :]
    k1 = 0
    if len(tail) >= 3:
        k1 ^= tail[2] << 16
    if len(tail) >= 2:
        k1 ^= tail[1] << 8
    if len(tail) >= 1:
        k1 ^= tail[0]
        k1 = (k1 * _C1) & _U32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * _C2) & _U32
        h1 ^= k1

    h1 ^= length
    return _fmix32(h1)


from functools import lru_cache


@lru_cache(maxsize=1 << 18)
def murmur3_64(data: bytes, seed: int = 0) -> int:
    """64 bits derived from two seeded murmur3_32 passes.

    Used where 32 bits of hash are not enough (double-hashing bloom
    filters over large key sets).  Cached: the same user keys are
    re-hashed at every compaction that rebuilds a bloom filter.
    """
    lo = murmur3_32(data, seed)
    hi = murmur3_32(data, seed ^ 0x9E3779B9)
    return (hi << 32) | lo

"""Low-level utilities shared by every subsystem.

Contents
--------
``varint``
    LevelDB-compatible unsigned varint32/64 encoding.
``crc``
    Masked CRC-32C-style checksums for log records and sstable blocks.
``murmur``
    Pure-Python MurmurHash3 (x86 32-bit), used for guard selection and
    bloom-filter hashing, matching the paper's use of MurmurHash.
``keys``
    Internal-key codec: ``(user_key, sequence, kind)`` packing and the
    comparator shared by the memtable, sstables, and merging iterators.
"""

from repro.util.varint import (
    decode_varint32,
    decode_varint64,
    encode_varint32,
    encode_varint64,
)
from repro.util.crc import crc32c, mask_crc, unmask_crc
from repro.util.murmur import murmur3_32, murmur3_64
from repro.util.keys import (
    KIND_DELETE,
    KIND_PUT,
    MAX_SEQUENCE,
    InternalKey,
    pack_internal_key,
    unpack_internal_key,
)

__all__ = [
    "decode_varint32",
    "decode_varint64",
    "encode_varint32",
    "encode_varint64",
    "crc32c",
    "mask_crc",
    "unmask_crc",
    "murmur3_32",
    "murmur3_64",
    "KIND_DELETE",
    "KIND_PUT",
    "MAX_SEQUENCE",
    "InternalKey",
    "pack_internal_key",
    "unpack_internal_key",
]

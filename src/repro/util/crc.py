"""Checksums for log records and sstable blocks.

LevelDB uses CRC-32C (Castagnoli) with a *masking* step so that a CRC stored
alongside the data it covers does not accidentally re-checksum to itself.
We reuse the masking scheme verbatim.  For the polynomial we use
:func:`zlib.crc32` (CRC-32/ISO-HDLC): the library never needs to
interoperate with real LevelDB files, only to detect corruption of its own
records, for which any 32-bit CRC is equally strong — and ``zlib.crc32`` is
C-speed, which matters in a pure-Python store.
"""

from __future__ import annotations

import zlib

_MASK_DELTA = 0xA282EAD8
_U32 = 0xFFFFFFFF


def crc32c(data: bytes, seed: int = 0) -> int:
    """32-bit CRC of ``data`` (optionally chained via ``seed``)."""
    return zlib.crc32(data, seed) & _U32


def mask_crc(crc: int) -> int:
    """Mask a raw CRC before storing it next to the covered bytes."""
    rotated = ((crc >> 15) | (crc << 17)) & _U32
    return (rotated + _MASK_DELTA) & _U32


def unmask_crc(masked: int) -> int:
    """Invert :func:`mask_crc`."""
    rotated = (masked - _MASK_DELTA) & _U32
    return ((rotated >> 17) | (rotated << 15)) & _U32

"""Space-efficient probabilistic membership filter.

PebblesDB attaches one bloom filter to every *sstable* (not every block):
a ``get`` that must consider the several overlapping sstables of a guard
asks the filters first and reads only tables that may contain the key
(paper section 4.1).  Guaranteed no false negatives; false-positive rate
is ~0.6% at the default 10 bits/key.

Hashing uses the standard double-hashing scheme ``h1 + i*h2`` over a
64-bit MurmurHash3 digest, which matches the k-independent behaviour the
analysis in paper section 3.7 assumes.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.errors import CorruptionError
from repro.util.murmur import murmur3_64

_MAGIC = b"BLM1"


class BloomFilter:
    """A fixed-size bloom filter over byte-string keys."""

    __slots__ = ("bits", "num_probes", "_array", "keys_added")

    def __init__(self, num_keys: int, bits_per_key: int = 10) -> None:
        if num_keys < 0:
            raise ValueError("num_keys must be >= 0")
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.bits = max(64, num_keys * bits_per_key)
        # k = ln(2) * bits/key, clamped like LevelDB's implementation.
        self.num_probes = max(1, min(30, int(round(bits_per_key * math.log(2)))))
        self._array = bytearray((self.bits + 7) // 8)
        self.keys_added = 0

    # ------------------------------------------------------------------
    def add(self, key: bytes) -> None:
        """Insert ``key`` into the filter."""
        h = murmur3_64(key)
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1  # odd step avoids short probe cycles
        for i in range(self.num_probes):
            bit = (h1 + i * h2) % self.bits
            self._array[bit >> 3] |= 1 << (bit & 7)
        self.keys_added += 1

    def add_all(self, keys: Iterable[bytes]) -> None:
        for key in keys:
            self.add(key)

    def may_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        return self.may_contain_hash(murmur3_64(key))

    def may_contain_hash(self, h: int) -> bool:
        """Membership test from a precomputed ``murmur3_64(key)`` digest.

        A get that consults several tables' filters for one key hashes
        the key once and probes each filter with the digest; probe
        positions depend on the digest and the filter's own geometry, so
        the digest is shareable across filters of any size.
        """
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1
        array = self._array
        for i in range(self.num_probes):
            bit = (h1 + i * h2) % self.bits
            if not array[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array (Table 5.4 accounting)."""
        return len(self._array)

    def expected_fpr(self) -> float:
        """Theoretical false-positive rate for the current load."""
        if self.keys_added == 0:
            return 0.0
        exponent = -self.num_probes * self.keys_added / self.bits
        return (1.0 - math.exp(exponent)) ** self.num_probes

    # ------------------------------------------------------------------
    # Serialization (stored in the sstable's filter block)
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        header = (
            _MAGIC
            + self.bits.to_bytes(8, "little")
            + self.num_probes.to_bytes(2, "little")
            + self.keys_added.to_bytes(8, "little")
        )
        return header + bytes(self._array)

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        if len(data) < 22 or data[:4] != _MAGIC:
            raise CorruptionError("bad bloom filter block")
        bits = int.from_bytes(data[4:12], "little")
        num_probes = int.from_bytes(data[12:14], "little")
        keys_added = int.from_bytes(data[14:22], "little")
        array = data[22:]
        if len(array) != (bits + 7) // 8:
            raise CorruptionError("bloom filter bit array truncated")
        filt: "BloomFilter" = cls.__new__(cls)
        filt.bits = bits
        filt.num_probes = num_probes
        filt._array = bytearray(array)
        filt.keys_added = keys_added
        return filt

    @classmethod
    def for_keys(cls, keys: Iterable[bytes], bits_per_key: int = 10) -> "BloomFilter":
        """Build a filter sized for ``keys`` (materializes the iterable)."""
        key_list = list(keys)
        filt = cls(len(key_list), bits_per_key)
        filt.add_all(key_list)
        return filt

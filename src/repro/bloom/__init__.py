"""Bloom filters (paper section 4.1)."""

from repro.bloom.bloom import BloomFilter

__all__ = ["BloomFilter"]

"""CPU cost model.

Engines charge the simulated clock for the computational work an operation
would do in the paper's C++ implementation (memtable probes, binary
searches, bloom checks, iterator merges).  The constants are rough
magnitudes for a modern Xeon; what matters for reproduction is their
*relative* size — e.g. seeks in FLSM touch more sstables per level than LSM,
so their extra per-sstable CPU and IO shows up exactly as the paper's range
query overhead does.

All costs are in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CpuCosts:
    """Per-operation CPU costs charged to the simulated clock."""

    #: Insert into the in-memory skip list (per put).
    memtable_insert: float = 2.0e-6
    #: Probe the in-memory skip list (per get, per memtable).
    memtable_lookup: float = 1.5e-6
    #: Binary search of an sstable's index plus in-block search.
    sstable_search: float = 3.0e-6
    #: One bloom-filter membership test.
    bloom_check: float = 0.3e-6
    #: Building bloom filters, per key (paper section 5.5 measures ~1.2s/GB).
    bloom_build_per_key: float = 0.25e-6
    #: Locate the guard / file for a level (binary search of metadata).
    level_binary_search: float = 0.8e-6
    #: Per-entry cost of merging sorted streams during compaction.
    merge_entry: float = 0.6e-6
    #: Advance + re-heapify a merging iterator (per next()).
    iterator_step: float = 0.9e-6
    #: Position one sstable iterator during a seek.
    iterator_seek_per_table: float = 2.0e-6
    #: Fixed overhead of dispatching a parallel seek to a worker thread.
    parallel_seek_dispatch: float = 4.0e-6
    #: Encode/decode a record crossing the WAL (per put).
    wal_record: float = 1.0e-6
    #: Compressing one KiB of sstable payload (snappy-class codec).
    compress_per_kb: float = 3.0e-6
    #: Copying/decoding a block out of the page cache (per 4 KiB block).
    block_decode: float = 1.0e-6

    #: Divisor modelling foreground thread parallelism: with N client
    #: threads on N cores, per-op CPU work overlaps, so each op's CPU
    #: contribution to the shared timeline shrinks by ~N while device time
    #: and stalls stay shared.  Set by the harness for multi-threaded
    #: benchmarks (paper runs YCSB and Figure 5.1c with 4 threads).
    thread_scale: float = 1.0

    #: Accumulated CPU seconds, by category (observability for section 5.5).
    accounting: dict = field(default_factory=dict)

    def charge(self, name: str, amount: float) -> float:
        """Record ``amount`` CPU-seconds under ``name``.

        Returns the *timeline* cost (scaled by ``thread_scale``) that the
        caller should charge to its account; the accounting dict records
        the unscaled CPU burned (section 5.5's CPU-usage comparison).
        """
        self.accounting[name] = self.accounting.get(name, 0.0) + amount
        return amount / self.thread_scale

    def total(self) -> float:
        """Total CPU seconds charged so far."""
        return sum(self.accounting.values())

"""File-system aging model (Figure 5.2a substrate).

The paper ages its testbed by repeatedly filling and deleting the file
system until only 11% free space remains, then ages the key-value store
itself with a churn of inserts/deletes/updates.  Aging fragments the free
space map, so "sequential" writes and reads are scattered across the
device; on their setup this cost reads ~18% and range queries ~16%.

We model the file-system part as a multiplier on device transfer times
(:attr:`repro.sim.device.DeviceModel.aging_factor`) computed from how full
and how churned the file system is.  Key-value-store aging is real, not
modelled: the benchmark performs the paper's churn workload against the
store before measuring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.device import DeviceModel


@dataclass
class FilesystemAging:
    """Derives an aging factor from fill cycles and final utilization.

    ``fill_cycles`` is how many times the file system was filled and
    emptied; ``utilization`` is the final fraction of space in use.
    Fragmentation grows with churn and with how little contiguous free
    space remains, saturating around +60% transfer cost — calibrated so the
    paper's aged-run degradation (~16-18% at their churn level) falls out
    at ``fill_cycles=2, utilization=0.89``.
    """

    fill_cycles: int = 0
    utilization: float = 0.0

    def factor(self) -> float:
        if self.fill_cycles <= 0:
            return 1.0
        churn = min(self.fill_cycles, 6) / 6.0
        pressure = max(0.0, min(self.utilization, 1.0)) ** 2
        return 1.0 + min(0.6, 0.45 * churn * pressure)

    def apply(self, device: DeviceModel) -> DeviceModel:
        """Set ``device.aging_factor`` from this model; returns the device."""
        device.aging_factor = self.factor()
        return device

"""LRU page cache standing in for the OS page cache.

The paper keeps its datasets 3x larger than DRAM and its low-memory
experiment (Figure 5.2b) shrinks DRAM to 6% of the dataset; read throughput
in both regimes is governed by the page-cache hit rate.  The cache maps
``(file_id, page_index)`` to presence (the actual bytes live in the
simulated files; caching presence is enough to decide whether a read pays
device latency).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Tuple

PAGE_SIZE = 4096


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """A byte-budgeted LRU cache of 4 KiB pages."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._pages: "OrderedDict[Tuple[Hashable, int], None]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes currently cached."""
        return len(self._pages) * PAGE_SIZE

    @property
    def max_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def access(self, file_id: Hashable, page: int, *, insert: bool = True) -> bool:
        """Touch one page; returns True on hit.

        On a miss the page is inserted (unless ``insert`` is False, used by
        compaction reads which should not evict hot application data — the
        effect of ``posix_fadvise(DONTNEED)`` in real stores).
        """
        key = (file_id, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if insert and self.max_pages > 0:
            self._pages[key] = None
            while len(self._pages) > self.max_pages:
                self._pages.popitem(last=False)
                self.stats.evictions += 1
        return False

    def access_range(
        self, file_id: Hashable, offset: int, length: int, *, insert: bool = True
    ) -> Tuple[int, int]:
        """Touch every page covering ``[offset, offset+length)``.

        Returns ``(hit_pages, miss_pages)``.
        """
        if length <= 0:
            return (0, 0)
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        hits = misses = 0
        for page in range(first, last + 1):
            if self.access(file_id, page, insert=insert):
                hits += 1
            else:
                misses += 1
        return (hits, misses)

    def populate_range(self, file_id: Hashable, offset: int, length: int) -> None:
        """Mark freshly written pages as cached (writes land in page cache)."""
        if length <= 0 or self.max_pages == 0:
            return
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        for page in range(first, last + 1):
            key = (file_id, page)
            self._pages[key] = None
            self._pages.move_to_end(key)
        while len(self._pages) > self.max_pages:
            self._pages.popitem(last=False)
            self.stats.evictions += 1

    def drop_file(self, file_id: Hashable) -> None:
        """Evict all pages of a deleted file."""
        stale = [key for key in self._pages if key[0] == file_id]
        for key in stale:
            del self._pages[key]

    def clear(self) -> None:
        """Drop everything (used to model a cold cache after remount)."""
        self._pages.clear()

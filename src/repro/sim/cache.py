"""LRU page cache standing in for the OS page cache.

The paper keeps its datasets 3x larger than DRAM and its low-memory
experiment (Figure 5.2b) shrinks DRAM to 6% of the dataset; read throughput
in both regimes is governed by the page-cache hit rate.  The cache maps
``(file_id, page_index)`` to presence (the actual bytes live in the
simulated files; caching presence is enough to decide whether a read pays
device latency).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Set, Tuple

PAGE_SIZE = 4096


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """A byte-budgeted LRU cache of 4 KiB pages.

    Range operations are batched: one pass over the interval's pages with
    bulk stat updates and a single end-of-batch eviction sweep, instead of
    a per-page method call with its own eviction loop.  A per-file page
    index makes ``drop_file`` proportional to the dropped file's resident
    pages rather than to everything cached.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._pages: "OrderedDict[Tuple[Hashable, int], None]" = OrderedDict()
        self._file_pages: Dict[Hashable, Set[int]] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes currently cached."""
        return len(self._pages) * PAGE_SIZE

    @property
    def max_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def _evict_over_budget(self) -> None:
        pages = self._pages
        file_pages = self._file_pages
        max_pages = self.max_pages
        evictions = 0
        while len(pages) > max_pages:
            file_id, page = pages.popitem(last=False)[0]
            resident = file_pages.get(file_id)
            if resident is not None:
                resident.discard(page)
                if not resident:
                    del file_pages[file_id]
            evictions += 1
        self.stats.evictions += evictions

    def access(self, file_id: Hashable, page: int, *, insert: bool = True) -> bool:
        """Touch one page; returns True on hit.

        On a miss the page is inserted (unless ``insert`` is False, used by
        compaction reads which should not evict hot application data — the
        effect of ``posix_fadvise(DONTNEED)`` in real stores).
        """
        key = (file_id, page)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if insert and self.max_pages > 0:
            self._pages[key] = None
            self._file_pages.setdefault(file_id, set()).add(page)
            self._evict_over_budget()
        return False

    def access_range(
        self, file_id: Hashable, offset: int, length: int, *, insert: bool = True
    ) -> Tuple[int, int]:
        """Touch every page covering ``[offset, offset+length)``.

        Returns ``(hit_pages, miss_pages)``.
        """
        if length <= 0:
            return (0, 0)
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        npages = last - first + 1
        pages = self._pages
        hits = 0
        max_pages = self.max_pages
        if insert and max_pages > 0:
            resident = self._file_pages.setdefault(file_id, set())
            for page in range(first, last + 1):
                key = (file_id, page)
                if key in pages:
                    pages.move_to_end(key)
                    hits += 1
                else:
                    pages[key] = None
                    resident.add(page)
            if len(pages) > max_pages:
                self._evict_over_budget()
                if not self._file_pages.get(file_id):
                    # Everything just inserted was immediately evicted again
                    # (range larger than the whole cache).
                    self._file_pages.pop(file_id, None)
        else:
            for page in range(first, last + 1):
                key = (file_id, page)
                if key in pages:
                    pages.move_to_end(key)
                    hits += 1
        misses = npages - hits
        self.stats.hits += hits
        self.stats.misses += misses
        return (hits, misses)

    def populate_range(self, file_id: Hashable, offset: int, length: int) -> None:
        """Mark freshly written pages as cached (writes land in page cache)."""
        if length <= 0 or self.max_pages == 0:
            return
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        pages = self._pages
        resident = self._file_pages.setdefault(file_id, set())
        for page in range(first, last + 1):
            key = (file_id, page)
            if key in pages:
                pages.move_to_end(key)
            else:
                pages[key] = None
                resident.add(page)
        if len(pages) > self.max_pages:
            self._evict_over_budget()
            if not self._file_pages.get(file_id):
                self._file_pages.pop(file_id, None)

    def drop_file(self, file_id: Hashable) -> None:
        """Evict all pages of a deleted file."""
        resident = self._file_pages.pop(file_id, None)
        if not resident:
            return
        pages = self._pages
        for page in resident:
            del pages[(file_id, page)]

    def clear(self) -> None:
        """Drop everything (used to model a cold cache after remount)."""
        self._pages.clear()
        self._file_pages.clear()

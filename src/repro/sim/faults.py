"""Deterministic fault injection for the simulated storage layer.

Real devices fail in richer ways than clean power loss: an fsync returns
EIO once and then works again, a disk runs out of spare blocks and every
write fails from then on, a torn write leaves half a record on the platter.
This module describes such failures as data — a :class:`FaultPlan` of
:class:`FaultSpec` entries — and :class:`FaultInjector` replays the plan
deterministically against every storage operation.

:class:`repro.sim.storage.SimulatedStorage` consults the injector (when
one is attached) on every ``append``, ``write_at``, ``read``, ``sync``,
and ``rename``.  A firing spec raises
:class:`repro.errors.TransientIOError` or
:class:`repro.errors.PersistentIOError` *before* the operation mutates
any state, so a failed operation is atomic — except for appends with a
``torn_fraction``, where a prefix of the payload lands first (a torn
write).

Determinism: triggering is driven only by per-spec match counters and a
RNG seeded from the plan, so a fixed plan yields the identical fault
sequence — and identical simulated metrics — on every run.  Decoded-block
cache hits consult the injector through the same chokepoint as raw reads
(``SimulatedStorage._charge_read``), so host-side memoization never
changes which operation a fault lands on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence

from repro.errors import PersistentIOError, TransientIOError

#: Fault kinds.
TRANSIENT = "transient"
PERSISTENT = "persistent"

#: Operations the storage layer reports to the injector.
OPS = ("append", "write_at", "read", "sync", "rename")


@dataclass
class FaultSpec:
    """One rule describing when a storage operation should fail.

    A spec *matches* an operation by name (``op``, ``"*"`` for any) and
    file-name glob (``name_pattern``).  Among matching operations it
    *fires* either on the ``at_op``-th match (0-based, counted per spec)
    or independently with ``probability`` per match, at most ``times``
    times (None = unlimited).
    """

    op: str = "*"
    name_pattern: str = "*"
    kind: str = TRANSIENT
    #: Fire on the k-th matching operation (0-based); None = probabilistic.
    at_op: Optional[int] = None
    #: Per-matching-operation firing probability (used when at_op is None).
    probability: float = 0.0
    #: Maximum number of firings; None = unlimited.
    times: Optional[int] = 1
    #: For ``append`` faults: fraction of the payload written before the
    #: error is raised (a torn write).  None = nothing is written.
    torn_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op != "*" and self.op not in OPS:
            raise ValueError(f"unknown fault op: {self.op!r} (have {OPS})")
        if self.kind not in (TRANSIENT, PERSISTENT):
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"bad fault probability: {self.probability}")
        if self.torn_fraction is not None and not 0.0 <= self.torn_fraction <= 1.0:
            raise ValueError(f"bad torn fraction: {self.torn_fraction}")

    def matches(self, op: str, name: str) -> bool:
        if self.op != "*" and self.op != op:
            return False
        return fnmatchcase(name, self.name_pattern)


@dataclass
class FaultPlan:
    """A seeded, ordered collection of fault specs."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def fail_nth(
        cls,
        n: int,
        *,
        op: str = "*",
        name_pattern: str = "*",
        kind: str = TRANSIENT,
        times: Optional[int] = 1,
        torn_fraction: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Fail the ``n``-th (0-based) matching operation."""
        return cls(
            [
                FaultSpec(
                    op=op,
                    name_pattern=name_pattern,
                    kind=kind,
                    at_op=n,
                    times=times,
                    torn_fraction=torn_fraction,
                )
            ],
            seed=seed,
        )

    @classmethod
    def probabilistic(
        cls,
        probability: float,
        *,
        op: str = "*",
        name_pattern: str = "*",
        kind: str = TRANSIENT,
        times: Optional[int] = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Fail each matching operation independently with ``probability``."""
        return cls(
            [
                FaultSpec(
                    op=op,
                    name_pattern=name_pattern,
                    kind=kind,
                    probability=probability,
                    times=times,
                )
            ],
            seed=seed,
        )

    @classmethod
    def from_string(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse a plan from CLI syntax.

        One spec is ``kind:op:pattern:trigger[:times=N][:torn=F]`` where
        ``trigger`` is ``at=K`` or ``p=X``; specs are separated by ``;``.
        Examples::

            transient:sync:db/*.log:at=5
            persistent:append:*.sst:at=40
            transient:*:*:p=0.001;persistent:rename:*:at=2
        """
        specs: List[FaultSpec] = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            fields = part.split(":")
            if len(fields) < 4:
                raise ValueError(
                    f"bad fault spec {part!r} "
                    "(want kind:op:pattern:trigger[:times=N][:torn=F])"
                )
            kind, op, pattern, trigger = fields[:4]
            kwargs: Dict[str, object] = {}
            if trigger.startswith("at="):
                kwargs["at_op"] = int(trigger[3:])
            elif trigger.startswith("p="):
                kwargs["probability"] = float(trigger[2:])
                kwargs["times"] = None
            else:
                raise ValueError(f"bad fault trigger {trigger!r} (want at=K or p=X)")
            for extra in fields[4:]:
                if extra.startswith("times="):
                    value = extra[6:]
                    kwargs["times"] = None if value in ("inf", "*") else int(value)
                elif extra.startswith("torn="):
                    kwargs["torn_fraction"] = float(extra[5:])
                else:
                    raise ValueError(f"bad fault spec field {extra!r}")
            specs.append(FaultSpec(op=op, name_pattern=pattern, kind=kind, **kwargs))
        return cls(specs, seed=seed)


@dataclass
class KillPoint:
    """A seeded process-kill point for the multiprocessing chaos tests.

    Storage faults above model a *device* misbehaving under a process
    that keeps running; a kill point models the *process* dying at an
    exact group-commit boundary.  The serving layer arms it via
    ``ProcessKVServer.arm_worker_kill``: the shard worker ``os._exit``\\ s
    after its ``after_commits``-th commit, either before the commit's
    record was shipped to the parent (``before_ship`` — applied but
    never externalized nor acknowledged) or after (``after_ship`` —
    externalized but never acknowledged, so the client's retry must be
    deduplicated).  Both sides of the ship boundary must converge to the
    same state as an uninterrupted run; the differential durability
    tests sweep seeded kill points across both modes to check that.
    """

    after_commits: int = 1
    mode: str = "after_ship"

    @classmethod
    def seeded(
        cls,
        seed: int,
        lo: int = 1,
        hi: int = 8,
        modes: Sequence[str] = ("before_ship", "after_ship"),
    ) -> "KillPoint":
        """Pick a deterministic commit index in [lo, hi] and a mode.

        A SplitMix64 hash (no RNG state) maps the seed to the kill
        point, so a given seed names the same point on every run and
        machine regardless of interpreter hash randomization.
        """
        h = _mix(seed)
        after = lo + h % max(1, hi - lo + 1)
        mode = modes[_mix(h) % len(modes)]
        return cls(after_commits=after, mode=mode)


def _mix(value: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed integer hash."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass
class FaultStats:
    """What the injector has seen and done (deterministic counters)."""

    ops_seen: int = 0
    faults_injected: int = 0
    transient_injected: int = 0
    persistent_injected: int = 0
    by_op: Dict[str, int] = field(default_factory=dict)


class _SpecState:
    __slots__ = ("matched", "fired")

    def __init__(self) -> None:
        self.matched = 0
        self.fired = 0


class InjectedFault:
    """The injector's verdict for one operation: which spec fired."""

    __slots__ = ("spec", "op", "name", "op_index")

    def __init__(self, spec: FaultSpec, op: str, name: str, op_index: int) -> None:
        self.spec = spec
        self.op = op
        self.name = name
        self.op_index = op_index

    @property
    def torn_fraction(self) -> Optional[float]:
        return self.spec.torn_fraction

    def make_error(self) -> Exception:
        message = (
            f"injected {self.spec.kind} fault: {self.op}({self.name}) "
            f"[storage op #{self.op_index}]"
        )
        if self.spec.kind == PERSISTENT:
            return PersistentIOError(message)
        return TransientIOError(message)


class FaultInjector:
    """Replays a :class:`FaultPlan` against the storage operation stream."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._states = [_SpecState() for _ in plan.specs]
        self.stats = FaultStats()

    # ------------------------------------------------------------------
    def poll(self, op: str, name: str) -> Optional[InjectedFault]:
        """Consult the plan for one operation; None means 'proceed'.

        Every matching probabilistic spec draws from the seeded RNG even
        when an earlier spec already fired, so adding a spec never shifts
        another spec's random sequence mid-plan.  Only the spec whose
        error is actually raised consumes its ``times`` budget: a spec
        suppressed by an earlier-listed spec on the same operation keeps
        its budget and can still fire on a later match.
        """
        stats = self.stats
        op_index = stats.ops_seen
        stats.ops_seen += 1
        fired: Optional[FaultSpec] = None
        fired_state: Optional[_SpecState] = None
        for spec, state in zip(self.plan.specs, self._states):
            if not spec.matches(op, name):
                continue
            index = state.matched
            state.matched += 1
            if spec.at_op is not None:
                should_fire = index >= spec.at_op
            else:
                should_fire = (
                    spec.probability > 0.0
                    and self._rng.random() < spec.probability
                )
            if not should_fire:
                continue
            if spec.times is not None and state.fired >= spec.times:
                continue
            if fired is None:
                fired = spec
                fired_state = state
        if fired is None or fired_state is None:
            return None
        fired_state.fired += 1
        stats.faults_injected += 1
        stats.by_op[op] = stats.by_op.get(op, 0) + 1
        if fired.kind == PERSISTENT:
            stats.persistent_injected += 1
        else:
            stats.transient_injected += 1
        return InjectedFault(fired, op, name, op_index)

    def check(self, op: str, name: str) -> Optional[InjectedFault]:
        """Poll and raise immediately unless the fault is a torn append.

        Torn appends are returned to the storage layer instead so it can
        write the surviving prefix before raising.
        """
        fault = self.poll(op, name)
        if fault is None:
            return None
        if op == "append" and fault.torn_fraction is not None:
            return fault
        raise fault.make_error()

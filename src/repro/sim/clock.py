"""Simulated clock.

All "time" in the library is simulated: device transfers, CPU work, and
write stalls advance this clock.  Benchmarks report ops per simulated
second, which makes runs deterministic and independent of the speed of the
Python interpreter executing them.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock (seconds, float)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be >= 0); returns now."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, deadline: float) -> float:
        """Move time forward to ``deadline`` if it is in the future."""
        if deadline > self._now:
            self._now = deadline
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"

"""Storage device cost model.

The Disk Access Model the paper uses for its asymptotic analysis charges a
unit cost per block transfer; our executable version charges real seconds:
a fixed per-request latency plus bytes / bandwidth, with distinct figures
for sequential and random access.  An *aging factor* (>= 1.0) models
file-system fragmentation: a fragmented free-space map turns large
sequential writes into scattered ones, shrinking effective bandwidth —
this is how the file-system-aging experiment (Figure 5.2a) degrades every
store's absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

MiB = 1024 * 1024


@dataclass
class DeviceModel:
    """Parameters of the simulated block device."""

    name: str = "ssd"
    #: Sequential bandwidths, bytes/second.
    seq_write_bw: float = 900.0 * MiB
    seq_read_bw: float = 1500.0 * MiB
    #: Per-request fixed latency (seconds) for random requests.
    rand_read_latency: float = 90.0e-6
    rand_write_latency: float = 60.0e-6
    #: Per-request fixed latency for sequential streams (amortized setup).
    seq_request_latency: float = 4.0e-6
    #: Fragmentation multiplier applied to transfer times (1.0 = fresh FS).
    aging_factor: float = 1.0

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def ssd_raid0(cls) -> "DeviceModel":
        """Two NVMe SSDs striped, as in the paper's testbed."""
        return cls(
            name="ssd-raid0",
            seq_write_bw=1800.0 * MiB,
            seq_read_bw=3000.0 * MiB,
            rand_read_latency=80.0e-6,
            rand_write_latency=50.0e-6,
        )

    @classmethod
    def ssd(cls) -> "DeviceModel":
        """A single NVMe SSD."""
        return cls(name="ssd")

    @classmethod
    def hdd(cls) -> "DeviceModel":
        """A 7200 RPM hard drive; random IO is ~100x costlier."""
        return cls(
            name="hdd",
            seq_write_bw=160.0 * MiB,
            seq_read_bw=180.0 * MiB,
            rand_read_latency=8.0e-3,
            rand_write_latency=8.0e-3,
            seq_request_latency=50.0e-6,
        )

    # ------------------------------------------------------------------
    # Cost functions
    # ------------------------------------------------------------------
    def seq_write_time(self, nbytes: int) -> float:
        """Seconds to append ``nbytes`` to a sequential stream."""
        return (self.seq_request_latency + nbytes / self.seq_write_bw) * self.aging_factor

    def seq_read_time(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` sequentially."""
        return (self.seq_request_latency + nbytes / self.seq_read_bw) * self.aging_factor

    def rand_read_time(self, nbytes: int) -> float:
        """Seconds for a random read of ``nbytes``."""
        return (self.rand_read_latency + nbytes / self.seq_read_bw) * self.aging_factor

    def rand_write_time(self, nbytes: int) -> float:
        """Seconds for a random write of ``nbytes``."""
        return (self.rand_write_latency + nbytes / self.seq_write_bw) * self.aging_factor

"""Deterministic token-bucket rate limiting on the simulated clock.

Real stores (RocksDB's ``RateLimiter``) throttle compaction I/O so
background merges cannot monopolize the device and starve foreground
reads.  Our background work is simulated, so instead of sleeping threads
we shape *job start times*: a caller asks the bucket when a job consuming
``amount`` units may begin, and submits the job to the
:class:`~repro.sim.executor.BackgroundExecutor` with ``at=`` that time.

The bucket is a pure function of its reservation sequence — no wall
clock, no randomness — so rate-limited schedules stay deterministic and
replayable like everything else in the simulation.
"""

from __future__ import annotations


class TokenBucket:
    """Paces reservations to ``rate`` units per simulated second.

    ``burst`` units of credit accumulate while the bucket sits idle, so a
    cold bucket admits a burst immediately instead of pacing from the
    first byte.  ``reserve`` never blocks and never refuses: it returns
    the earliest start time, which is in the future only when the bucket
    is in debt.  Start times are monotone in reservation order, so a
    stalled writer waiting on the earliest pending completion always has
    a finite deadline — the limiter can delay work but can never
    deadlock it.
    """

    #: Cap on the auto-widening multiplier (see :meth:`adapt`).
    MAX_WIDEN = 16.0

    def __init__(self, rate: float, burst: "float | None" = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)
        #: Idle credit cap, in units (default: one second's worth).
        self.burst = float(rate if burst is None else burst)
        if self.burst < 0:
            raise ValueError("burst must be >= 0")
        #: Sim time at which the bucket next has zero debt and zero credit.
        #: Behind ``now`` = accumulated credit; ahead of ``now`` = debt.
        self._ready = 0.0
        #: Auto-tune multiplier applied to ``rate`` (1 = configured rate).
        self.widen = 1.0
        #: Highest multiplier ever reached (``widen`` decays back toward
        #: 1 when pressure clears; the peak records that it happened).
        self.widen_peak = 1.0
        # Accounting for observability.
        self.reservations = 0
        self.delayed = 0
        self.delay_seconds = 0.0

    @property
    def effective_rate(self) -> float:
        return self.rate * self.widen

    def reserve(self, amount: float, now: float) -> float:
        """Earliest sim time a job consuming ``amount`` units may start."""
        if amount < 0:
            raise ValueError("amount must be >= 0")
        rate = self.effective_rate
        cost = amount / rate
        # Refill while idle, capped at ``burst`` units of credit.
        ready = max(self._ready, now - self.burst / rate)
        start = max(now, ready)
        self._ready = ready + cost
        self.reservations += 1
        if start > now:
            self.delayed += 1
            self.delay_seconds += start - now
        return start

    def adapt(self, under_pressure: bool) -> None:
        """Auto-tune: double the rate under write-stall pressure (capped
        at ``MAX_WIDEN`` x), halve back toward the configured rate when
        the pressure clears."""
        if under_pressure:
            self.widen = min(self.MAX_WIDEN, self.widen * 2.0)
            self.widen_peak = max(self.widen_peak, self.widen)
        else:
            self.widen = max(1.0, self.widen / 2.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TokenBucket(rate={self.rate:.0f}, widen={self.widen:.1f}, "
            f"ready={self._ready:.6f})"
        )

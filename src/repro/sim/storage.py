"""The simulated file namespace all engines write through.

``SimulatedStorage`` is the single chokepoint between engines and the
"hardware": every byte appended, overwritten, or read passes through it, so
write amplification and space amplification are measured exactly, and every
transfer charges simulated time to an :class:`IoAccount` (the foreground
clock, or a background compaction job's accumulator).

Durability semantics mirror a POSIX file system closely enough for
crash-recovery testing: data is durable only up to the last ``sync`` of its
file; ``crash()`` truncates every file to its synced length and forgets
never-synced files.  Renames are modelled as atomic and durable (the
engines only rename the small CURRENT pointer, and real stores sync the
directory around that rename).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.sim.cache import PAGE_SIZE, PageCache
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuCosts
from repro.sim.device import DeviceModel


class IoAccount:
    """A named sink for simulated seconds of device/CPU time.

    Foreground accounts advance the shared clock directly; background
    accounts (compaction jobs) accumulate seconds that the executor later
    lays out on a worker timeline.
    """

    __slots__ = ("name", "_clock", "seconds")

    def __init__(self, name: str, clock: Optional[SimClock] = None) -> None:
        self.name = name
        self._clock = clock
        self.seconds = 0.0

    def charge(self, seconds: float) -> None:
        self.seconds += seconds
        if self._clock is not None:
            self._clock.advance(seconds)

    @property
    def is_foreground(self) -> bool:
        return self._clock is not None


@dataclass
class StorageStats:
    """Cumulative IO accounting (bytes are device IO, not logical IO)."""

    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0
    sync_ops: int = 0
    written_by_account: Dict[str, int] = field(default_factory=dict)
    read_by_account: Dict[str, int] = field(default_factory=dict)

    def note_write(self, account: str, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.write_ops += 1
        self.written_by_account[account] = (
            self.written_by_account.get(account, 0) + nbytes
        )

    def note_read(self, account: str, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.read_ops += 1
        self.read_by_account[account] = self.read_by_account.get(account, 0) + nbytes


class _SimFile:
    __slots__ = ("name", "file_id", "data", "synced_len", "charge_factor")

    def __init__(self, name: str, file_id: int, charge_factor: float = 1.0) -> None:
        self.name = name
        self.file_id = file_id
        self.data = bytearray()
        self.synced_len = 0
        #: Device-bytes per logical byte: < 1.0 models a compressed file
        #: (the simulation stores logical bytes; transfers and occupancy
        #: are charged at the compressed size).
        self.charge_factor = charge_factor


class SimulatedStorage:
    """An in-memory file namespace with device-time and durability modelling."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        device: Optional[DeviceModel] = None,
        cache: Optional[PageCache] = None,
        cpu: Optional[CpuCosts] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.device = device if device is not None else DeviceModel.ssd_raid0()
        self.cache = cache if cache is not None else PageCache(64 * 1024 * 1024)
        self.cpu = cpu if cpu is not None else CpuCosts()
        self.stats = StorageStats()
        self._files: Dict[str, _SimFile] = {}
        self._next_file_id = 1

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------
    def foreground_account(self, name: str = "foreground") -> IoAccount:
        """An account that advances the shared clock as it is charged."""
        return IoAccount(name, self.clock)

    def background_account(self, name: str) -> IoAccount:
        """An account that only accumulates seconds (for executor jobs)."""
        return IoAccount(name)

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def create(self, name: str, charge_factor: float = 1.0) -> None:
        """Create an empty file; error if it already exists.

        ``charge_factor`` < 1.0 marks the file as compressed on the
        device: transfers and space are charged at the compressed size
        while contents stay byte-addressable.
        """
        if name in self._files:
            raise StorageError(f"file exists: {name}")
        if not 0.0 < charge_factor <= 1.0:
            raise StorageError(f"bad charge factor: {charge_factor}")
        self._files[name] = _SimFile(name, self._next_file_id, charge_factor)
        self._next_file_id += 1

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._files if n.startswith(prefix))

    def size(self, name: str) -> int:
        return len(self._file(name).data)

    def total_live_bytes(self, prefix: str = "") -> int:
        """Bytes currently occupied on 'disk' (space amplification input)."""
        return sum(
            int(len(f.data) * f.charge_factor)
            for n, f in self._files.items()
            if n.startswith(prefix)
        )

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise StorageError(f"no such file: {name}")
        self.cache.drop_file(f.file_id)

    def rename(self, old: str, new: str) -> None:
        """Atomically rename ``old`` to ``new`` (replacing ``new``)."""
        f = self._files.pop(old, None)
        if f is None:
            raise StorageError(f"no such file: {old}")
        replaced = self._files.pop(new, None)
        if replaced is not None:
            self.cache.drop_file(replaced.file_id)
        f.name = new
        self._files[new] = f

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def append(self, name: str, data: bytes, account: IoAccount) -> None:
        """Append ``data``; charged as a sequential write."""
        f = self._file(name)
        offset = len(f.data)
        f.data.extend(data)
        device_bytes = int(len(data) * f.charge_factor)
        account.charge(self.device.seq_write_time(device_bytes))
        self.stats.note_write(account.name, device_bytes)
        self.cache.populate_range(f.file_id, offset, len(data))

    def write_at(self, name: str, offset: int, data: bytes, account: IoAccount) -> None:
        """Overwrite in place (B+tree page writes); charged as random write."""
        f = self._file(name)
        end = offset + len(data)
        if end > len(f.data):
            f.data.extend(b"\x00" * (end - len(f.data)))
        f.data[offset:end] = data
        account.charge(self.device.rand_write_time(len(data)))
        self.stats.note_write(account.name, len(data))
        self.cache.populate_range(f.file_id, offset, len(data))

    def read(
        self,
        name: str,
        offset: int,
        length: int,
        account: IoAccount,
        *,
        sequential: bool = False,
        cache_insert: bool = True,
    ) -> bytes:
        """Read bytes; device time is charged only for page-cache misses."""
        f = self._file(name)
        self._charge_read(
            f, offset, length, account, sequential=sequential, cache_insert=cache_insert
        )
        return bytes(f.data[offset : offset + length])

    def charge_read(
        self,
        name: str,
        offset: int,
        length: int,
        account: IoAccount,
        *,
        sequential: bool = False,
        cache_insert: bool = True,
    ) -> None:
        """Charge exactly what :meth:`read` would, without returning bytes.

        Used by host-side memoization (the decoded-block cache): a caller
        that already holds the parsed contents must still pay the same
        simulated device time, page-cache accounting, and IO statistics
        the raw read would have, so every simulated metric is identical
        whether the memo hit or not.
        """
        self._charge_read(
            self._file(name),
            offset,
            length,
            account,
            sequential=sequential,
            cache_insert=cache_insert,
        )

    def _charge_read(
        self,
        f: _SimFile,
        offset: int,
        length: int,
        account: IoAccount,
        *,
        sequential: bool,
        cache_insert: bool,
    ) -> None:
        if offset < 0 or offset + length > len(f.data):
            raise StorageError(
                f"read out of bounds: {f.name}[{offset}:{offset + length}] "
                f"(size {len(f.data)})"
            )
        hits, misses = self.cache.access_range(
            f.file_id, offset, length, insert=cache_insert
        )
        if misses:
            nbytes = int(misses * PAGE_SIZE * f.charge_factor)
            if sequential:
                account.charge(self.device.seq_read_time(nbytes))
            else:
                account.charge(self.device.rand_read_time(nbytes))
            self.stats.note_read(account.name, nbytes)
        if hits:
            account.charge(self.cpu.charge("block_decode", hits * self.cpu.block_decode))

    def sync(self, name: str, account: IoAccount) -> None:
        """Make all bytes of ``name`` durable."""
        f = self._file(name)
        f.synced_len = len(f.data)
        self.stats.sync_ops += 1
        account.charge(self.device.seq_request_latency)

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate power loss: discard everything not yet synced."""
        doomed = [n for n, f in self._files.items() if f.synced_len == 0]
        for name in doomed:
            self.delete(name)
        for f in self._files.values():
            del f.data[f.synced_len :]
        self.cache.clear()

    # ------------------------------------------------------------------
    def _file(self, name: str) -> _SimFile:
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"no such file: {name}")
        return f

"""The simulated file namespace all engines write through.

``SimulatedStorage`` is the single chokepoint between engines and the
"hardware": every byte appended, overwritten, or read passes through it, so
write amplification and space amplification are measured exactly, and every
transfer charges simulated time to an :class:`IoAccount` (the foreground
clock, or a background compaction job's accumulator).

Durability semantics mirror a POSIX file system closely enough for
crash-recovery testing: data is durable only up to the last ``sync`` of its
file; ``crash()`` truncates every file to its synced length and forgets
never-synced files.  Renames are modelled as atomic and durable (the
engines only rename the small CURRENT pointer, and real stores sync the
directory around that rename).

Beyond clean power loss, two failure dimensions are modelled:

* **Operation faults** — when a :class:`repro.sim.faults.FaultInjector`
  is attached (``storage.faults``), every ``append`` / ``write_at`` /
  ``read`` / ``sync`` / ``rename`` consults it first and may raise
  :class:`TransientIOError` / :class:`PersistentIOError`.  A faulted
  operation mutates nothing, except torn appends which write a prefix of
  the payload before raising.
* **Crash modes** — ``crash(mode=...)`` supports ``torn`` (a random
  prefix of each unsynced tail survives), ``garbage`` (random bytes past
  the synced length), and ``bitflip`` (one bit flips inside durable
  data), in addition to the default ``clean`` truncation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import StorageError
from repro.sim.cache import PAGE_SIZE, PageCache
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuCosts
from repro.sim.device import DeviceModel
from repro.sim.faults import FaultInjector

#: Crash modes accepted by :meth:`SimulatedStorage.crash`.
CRASH_CLEAN = "clean"
CRASH_TORN = "torn"
CRASH_GARBAGE = "garbage"
CRASH_BITFLIP = "bitflip"
CRASH_MODES = (CRASH_CLEAN, CRASH_TORN, CRASH_GARBAGE, CRASH_BITFLIP)


class IoAccount:
    """A named sink for simulated seconds of device/CPU time.

    Foreground accounts advance the shared clock directly; background
    accounts (compaction jobs) accumulate seconds that the executor later
    lays out on a worker timeline.
    """

    __slots__ = ("name", "_clock", "seconds")

    def __init__(self, name: str, clock: Optional[SimClock] = None) -> None:
        self.name = name
        self._clock = clock
        self.seconds = 0.0

    def charge(self, seconds: float) -> None:
        self.seconds += seconds
        if self._clock is not None:
            self._clock.advance(seconds)

    @property
    def is_foreground(self) -> bool:
        return self._clock is not None


@dataclass
class StorageStats:
    """Cumulative IO accounting (bytes are device IO, not logical IO)."""

    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0
    sync_ops: int = 0
    written_by_account: Dict[str, int] = field(default_factory=dict)
    read_by_account: Dict[str, int] = field(default_factory=dict)
    #: Sync calls per account name — attributes fsync traffic to its
    #: source (WAL group commit vs sstable build vs MANIFEST append).
    syncs_by_account: Dict[str, int] = field(default_factory=dict)

    def note_write(self, account: str, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.write_ops += 1
        self.written_by_account[account] = (
            self.written_by_account.get(account, 0) + nbytes
        )

    def note_read(self, account: str, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.read_ops += 1
        self.read_by_account[account] = self.read_by_account.get(account, 0) + nbytes


class _SimFile:
    __slots__ = ("name", "file_id", "data", "synced_len", "charge_factor")

    def __init__(self, name: str, file_id: int, charge_factor: float = 1.0) -> None:
        self.name = name
        self.file_id = file_id
        self.data = bytearray()
        self.synced_len = 0
        #: Device-bytes per logical byte: < 1.0 models a compressed file
        #: (the simulation stores logical bytes; transfers and occupancy
        #: are charged at the compressed size).
        self.charge_factor = charge_factor


class SimulatedStorage:
    """An in-memory file namespace with device-time and durability modelling."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        device: Optional[DeviceModel] = None,
        cache: Optional[PageCache] = None,
        cpu: Optional[CpuCosts] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.device = device if device is not None else DeviceModel.ssd_raid0()
        self.cache = cache if cache is not None else PageCache(64 * 1024 * 1024)
        self.cpu = cpu if cpu is not None else CpuCosts()
        #: Optional fault injector; every data/durability operation asks it
        #: for permission first.  Assign None to stop injecting.
        self.faults = faults
        self.stats = StorageStats()
        self._files: Dict[str, _SimFile] = {}
        self._next_file_id = 1

    def set_fault_injector(self, faults: Optional[FaultInjector]) -> None:
        """Attach (or detach, with None) a fault injector."""
        self.faults = faults

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------
    def foreground_account(self, name: str = "foreground") -> IoAccount:
        """An account that advances the shared clock as it is charged."""
        return IoAccount(name, self.clock)

    def background_account(self, name: str) -> IoAccount:
        """An account that only accumulates seconds (for executor jobs)."""
        return IoAccount(name)

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def create(self, name: str, charge_factor: float = 1.0) -> None:
        """Create an empty file; error if it already exists.

        ``charge_factor`` < 1.0 marks the file as compressed on the
        device: transfers and space are charged at the compressed size
        while contents stay byte-addressable.
        """
        if name in self._files:
            raise StorageError(f"file exists: {name}")
        if not 0.0 < charge_factor <= 1.0:
            raise StorageError(f"bad charge factor: {charge_factor}")
        self._files[name] = _SimFile(name, self._next_file_id, charge_factor)
        self._next_file_id += 1

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._files if n.startswith(prefix))

    def size(self, name: str) -> int:
        return len(self._file(name).data)

    def total_live_bytes(self, prefix: str = "") -> int:
        """Bytes currently occupied on 'disk' (space amplification input)."""
        return sum(
            int(len(f.data) * f.charge_factor)
            for n, f in self._files.items()
            if n.startswith(prefix)
        )

    def delete(self, name: str) -> None:
        f = self._files.pop(name, None)
        if f is None:
            raise StorageError(f"no such file: {name}")
        self.cache.drop_file(f.file_id)

    def rename(self, old: str, new: str) -> None:
        """Atomically rename ``old`` to ``new`` (replacing ``new``)."""
        if self.faults is not None:
            self.faults.check("rename", old)
        f = self._files.pop(old, None)
        if f is None:
            raise StorageError(f"no such file: {old}")
        replaced = self._files.pop(new, None)
        if replaced is not None:
            self.cache.drop_file(replaced.file_id)
        f.name = new
        self._files[new] = f

    # ------------------------------------------------------------------
    # Data operations
    # ------------------------------------------------------------------
    def append(self, name: str, data: bytes, account: IoAccount) -> None:
        """Append ``data``; charged as a sequential write.

        An injected fault normally leaves the file untouched; a fault
        with a ``torn_fraction`` first appends that prefix of the payload
        (charging device time and statistics for the bytes that landed),
        modelling a torn write.
        """
        f = self._file(name)
        if self.faults is not None:
            fault = self.faults.check("append", name)
            if fault is not None:  # torn append: a prefix survives
                torn = data[: int(len(data) * fault.torn_fraction)]
                if torn:
                    self._append_bytes(f, torn, account)
                raise fault.make_error()
        self._append_bytes(f, data, account)

    def _append_bytes(self, f: _SimFile, data: bytes, account: IoAccount) -> None:
        offset = len(f.data)
        f.data.extend(data)
        device_bytes = int(len(data) * f.charge_factor)
        account.charge(self.device.seq_write_time(device_bytes))
        self.stats.note_write(account.name, device_bytes)
        self.cache.populate_range(f.file_id, offset, len(data))

    def write_at(self, name: str, offset: int, data: bytes, account: IoAccount) -> None:
        """Overwrite in place (B+tree page writes); charged as random write."""
        f = self._file(name)
        if self.faults is not None:
            self.faults.check("write_at", name)
        end = offset + len(data)
        if end > len(f.data):
            f.data.extend(b"\x00" * (end - len(f.data)))
        f.data[offset:end] = data
        account.charge(self.device.rand_write_time(len(data)))
        self.stats.note_write(account.name, len(data))
        self.cache.populate_range(f.file_id, offset, len(data))

    def read(
        self,
        name: str,
        offset: int,
        length: int,
        account: IoAccount,
        *,
        sequential: bool = False,
        cache_insert: bool = True,
    ) -> bytes:
        """Read bytes; device time is charged only for page-cache misses."""
        f = self._file(name)
        self._charge_read(
            f, offset, length, account, sequential=sequential, cache_insert=cache_insert
        )
        return bytes(f.data[offset : offset + length])

    def charge_read(
        self,
        name: str,
        offset: int,
        length: int,
        account: IoAccount,
        *,
        sequential: bool = False,
        cache_insert: bool = True,
    ) -> None:
        """Charge exactly what :meth:`read` would, without returning bytes.

        Used by host-side memoization (the decoded-block cache): a caller
        that already holds the parsed contents must still pay the same
        simulated device time, page-cache accounting, and IO statistics
        the raw read would have, so every simulated metric is identical
        whether the memo hit or not.
        """
        self._charge_read(
            self._file(name),
            offset,
            length,
            account,
            sequential=sequential,
            cache_insert=cache_insert,
        )

    def _charge_read(
        self,
        f: _SimFile,
        offset: int,
        length: int,
        account: IoAccount,
        *,
        sequential: bool,
        cache_insert: bool,
    ) -> None:
        if offset < 0 or offset + length > len(f.data):
            raise StorageError(
                f"read out of bounds: {f.name}[{offset}:{offset + length}] "
                f"(size {len(f.data)})"
            )
        # The fault check sits on the shared charge path so that a
        # decoded-block-cache hit (charge_read) consults the injector at
        # the same operation index a raw read would — fault placement is
        # identical with host-side memoization on or off.
        if self.faults is not None:
            self.faults.check("read", f.name)
        hits, misses = self.cache.access_range(
            f.file_id, offset, length, insert=cache_insert
        )
        if misses:
            nbytes = int(misses * PAGE_SIZE * f.charge_factor)
            if sequential:
                account.charge(self.device.seq_read_time(nbytes))
            else:
                account.charge(self.device.rand_read_time(nbytes))
            self.stats.note_read(account.name, nbytes)
        if hits:
            account.charge(self.cpu.charge("block_decode", hits * self.cpu.block_decode))

    def sync(self, name: str, account: IoAccount) -> None:
        """Make all bytes of ``name`` durable."""
        f = self._file(name)
        if self.faults is not None:
            self.faults.check("sync", name)
        f.synced_len = len(f.data)
        self.stats.sync_ops += 1
        self.stats.syncs_by_account[account.name] = (
            self.stats.syncs_by_account.get(account.name, 0) + 1
        )
        account.charge(self.device.seq_request_latency)

    def synced_size(self, name: str) -> int:
        """Bytes of ``name`` known durable (the last synced length).

        Recovery code uses this as the acknowledged-data boundary: with
        synchronous writes, corruption *below* it means acknowledged data
        was damaged, while corruption at or past it is a normal torn tail.
        """
        return self._file(name).synced_len

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------
    def crash(self, mode: str = CRASH_CLEAN, seed: int = 0) -> None:
        """Simulate power loss; ``mode`` picks how messy the loss is.

        * ``clean`` — every file truncates exactly to its synced length
          and never-synced files vanish (the classic model).
        * ``torn`` — a random prefix of each unsynced tail survives, so
          recovery sees partially-written records.
        * ``garbage`` — the surviving unsynced tail bytes are replaced
          with random garbage (uninitialized sectors), so recovery sees
          data that fails checksums rather than merely stopping short.
        * ``bitflip`` — clean truncation, then one random bit flips
          inside the *synced* region of one file: latent media corruption
          that strict recovery must detect as acknowledged-data loss.

        ``seed`` makes the torn/garbage/bitflip randomness reproducible.
        """
        if mode not in CRASH_MODES:
            raise StorageError(f"unknown crash mode: {mode!r} (have {CRASH_MODES})")
        rng = random.Random(seed)
        doomed = [n for n, f in self._files.items() if f.synced_len == 0]
        for name in doomed:
            self.delete(name)
        for f in sorted(self._files.values(), key=lambda f: f.name):
            unsynced = len(f.data) - f.synced_len
            if unsynced <= 0 or mode == CRASH_CLEAN or mode == CRASH_BITFLIP:
                del f.data[f.synced_len :]
                continue
            keep = rng.randrange(unsynced + 1)
            del f.data[f.synced_len + keep :]
            if mode == CRASH_GARBAGE and keep:
                garbage = bytes(rng.getrandbits(8) for _ in range(keep))
                f.data[f.synced_len :] = garbage
        if mode == CRASH_BITFLIP:
            victims = [f for f in self._files.values() if f.synced_len > 0]
            if victims:
                victim = rng.choice(sorted(victims, key=lambda f: f.name))
                bit = rng.randrange(victim.synced_len * 8)
                victim.data[bit // 8] ^= 1 << (bit % 8)
        self.cache.clear()

    # ------------------------------------------------------------------
    def _file(self, name: str) -> _SimFile:
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"no such file: {name}")
        return f

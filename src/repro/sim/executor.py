"""Background worker timelines for flushes and compactions.

Real LSM stores run compaction on background threads; write throughput
collapses when those threads cannot keep up and Level-0 fills (the
slowdown/stop mechanism).  We reproduce those dynamics without real
threads: an engine *computes* a flush or compaction synchronously (so the
simulation stays deterministic), measures its IO + CPU cost, and submits it
here.  The executor lays the job on the earliest-free worker timeline and
the job's effects become *visible* (its ``apply`` callback runs) only when
the simulated clock passes its completion time.

Engines call :meth:`BackgroundExecutor.drain` before every foreground
operation, and :meth:`wait_for` when a write must stall (Level-0 stop, or
too many immutable memtables).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence

from repro.sim.clock import SimClock


class Job:
    """A unit of background work with a completion time."""

    __slots__ = (
        "kind",
        "cost",
        "submitted",
        "start",
        "completion",
        "apply",
        "applied",
        "seq",
    )

    def __init__(
        self,
        kind: str,
        cost: float,
        start: float,
        completion: float,
        apply: Optional[Callable[[], None]],
        seq: int,
        submitted: float = 0.0,
    ) -> None:
        self.kind = kind
        self.cost = cost
        #: Sim time the job was submitted; ``start - submitted`` is the
        #: queue/dependency wait (observability spans report it).
        self.submitted = submitted
        self.start = start
        self.completion = completion
        self.apply = apply
        self.applied = False
        self.seq = seq

    @property
    def queue_wait(self) -> float:
        """Seconds between submission and the job actually starting."""
        return self.start - self.submitted

    def __lt__(self, other: "Job") -> bool:
        return (self.completion, self.seq) < (other.completion, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.kind}, cost={self.cost:.6f}, "
            f"completes={self.completion:.6f}, applied={self.applied})"
        )


class BackgroundExecutor:
    """``workers`` parallel timelines executing jobs in submission order."""

    def __init__(self, clock: SimClock, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.clock = clock
        self._worker_free = [0.0] * workers
        self._pending: List[Job] = []
        self._seq = 0
        self.jobs_run = 0
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._worker_free)

    def submit(
        self,
        kind: str,
        cost: float,
        apply: Optional[Callable[[], None]] = None,
        at: Optional[float] = None,
        after: Optional[Sequence[Job]] = None,
    ) -> Job:
        """Schedule ``cost`` seconds of work; returns the in-flight job.

        ``after`` lists jobs this one depends on: the new job becomes
        *ready* only once every dependency has completed, so its start
        time is ``max(at, worker free, dep completions)``.  The pending
        heap is the ready queue — jobs pop strictly in ``(completion,
        seq)`` order, which keeps every schedule a pure function of the
        submission sequence regardless of worker count.
        """
        if cost < 0:
            raise ValueError(f"negative job cost: {cost}")
        when = self.clock.now if at is None else at
        if after:
            for dep in after:
                when = max(when, dep.completion)
        idx = min(range(len(self._worker_free)), key=self._worker_free.__getitem__)
        start = max(when, self._worker_free[idx])
        completion = start + cost
        self._worker_free[idx] = completion
        self._seq += 1
        job = Job(kind, cost, start, completion, apply, self._seq, submitted=self.clock.now)
        heapq.heappush(self._pending, job)
        self.jobs_run += 1
        self.busy_seconds += cost
        return job

    def drain(self, now: Optional[float] = None) -> int:
        """Apply every job whose completion time has passed; returns count."""
        if now is None:
            now = self.clock.now
        applied = 0
        while self._pending and self._pending[0].completion <= now:
            job = heapq.heappop(self._pending)
            self._run(job)
            applied += 1
        return applied

    def wait_for(self, job: Job) -> None:
        """Advance the clock to ``job``'s completion and apply due jobs."""
        self.clock.advance_to(job.completion)
        self.drain()

    def wait_all(self) -> None:
        """Advance the clock until every submitted job has applied."""
        while self._pending:
            job = heapq.heappop(self._pending)
            self.clock.advance_to(job.completion)
            self._run(job)

    def backlog_seconds(self, now: Optional[float] = None) -> float:
        """How far behind the busiest worker is (0 when idle)."""
        if now is None:
            now = self.clock.now
        return max(0.0, max(self._worker_free) - now)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def peek_next(self) -> Optional[Job]:
        """The pending job that will complete soonest, if any."""
        return self._pending[0] if self._pending else None

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        if not job.applied:
            job.applied = True
            if job.apply is not None:
                job.apply()

"""Simulated storage substrate.

The paper evaluates PebblesDB on real NVMe SSDs and measures wall-clock
throughput and device IO.  This package substitutes that hardware with a
deterministic simulation (see DESIGN.md section 2):

* :mod:`repro.sim.clock` — a simulated clock; throughput numbers are
  operations per *simulated* second.
* :mod:`repro.sim.device` — a device cost model (sequential bandwidth,
  random-read latency, aging degradation) with SSD/RAID0/HDD presets.
* :mod:`repro.sim.cache` — an LRU page cache standing in for DRAM; cache
  hits cost CPU only, misses pay device latency.
* :mod:`repro.sim.storage` — the file namespace every engine writes
  through.  Tracks exact byte counts (write/space amplification are exact),
  distinguishes synced from unsynced data, and supports ``crash()`` for
  crash-recovery testing.
* :mod:`repro.sim.executor` — background worker timelines modelling
  flush/compaction threads; write stalls emerge when compaction debt grows.
* :mod:`repro.sim.cpu` — the per-operation CPU cost table.
* :mod:`repro.sim.faults` — deterministic fault injection: plans of
  transient/persistent I/O errors replayed against the operation stream,
  plus the torn/garbage/bit-flip crash modes of ``crash()``.
"""

from repro.sim.clock import SimClock
from repro.sim.cpu import CpuCosts
from repro.sim.device import DeviceModel
from repro.sim.cache import PageCache
from repro.sim.faults import (
    PERSISTENT,
    TRANSIENT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultStats,
    KillPoint,
)
from repro.sim.storage import (
    CRASH_BITFLIP,
    CRASH_CLEAN,
    CRASH_GARBAGE,
    CRASH_MODES,
    CRASH_TORN,
    IoAccount,
    SimulatedStorage,
    StorageStats,
)
from repro.sim.executor import BackgroundExecutor, Job
from repro.sim.ratelimit import TokenBucket

__all__ = [
    "TokenBucket",
    "SimClock",
    "CpuCosts",
    "DeviceModel",
    "PageCache",
    "IoAccount",
    "SimulatedStorage",
    "StorageStats",
    "BackgroundExecutor",
    "Job",
    "FaultInjector",
    "FaultPlan",
    "KillPoint",
    "FaultSpec",
    "FaultStats",
    "TRANSIENT",
    "PERSISTENT",
    "CRASH_CLEAN",
    "CRASH_TORN",
    "CRASH_GARBAGE",
    "CRASH_BITFLIP",
    "CRASH_MODES",
]

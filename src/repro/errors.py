"""Exception hierarchy for the repro key-value store library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class.  The hierarchy
mirrors the failure categories of LevelDB-family stores: corruption of
on-storage data, invalid user arguments, attempts to use a closed store,
and simulated-device faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CorruptionError(ReproError):
    """On-storage data failed a checksum, magic-number, or format check."""


class NotFoundError(KeyError, ReproError):
    """The requested key (or file) does not exist.

    Inherits from :class:`KeyError` so ``store[key]`` style access behaves
    like a mapping.
    """


class InvalidArgumentError(ValueError, ReproError):
    """A caller-supplied argument is malformed (empty key, bad range, ...)."""


class StoreClosedError(ReproError):
    """An operation was attempted on a store that has been closed."""


class StorageError(ReproError):
    """The simulated storage device rejected an operation."""


class TransientIOError(StorageError):
    """An injected I/O fault that may succeed if the operation is retried.

    Models the recoverable failures real devices and file systems produce
    (EINTR, momentary controller resets, NFS hiccups).  Engines retry
    these with capped exponential backoff before giving up.
    """


class PersistentIOError(StorageError):
    """An injected I/O fault that retrying cannot fix.

    Models hard failures (ENOSPC, a dying disk, a revoked lease).  A
    persistent fault on a background path moves the store into degraded
    read-only mode (see :class:`BackgroundError`).
    """


class BackgroundError(ReproError):
    """The store is in degraded read-only mode after a background failure.

    Raised by write operations while a sticky background error is set
    (flush/compaction/MANIFEST failure that retries could not clear).
    Reads keep serving from the last consistent state; ``resume()``
    re-verifies and restores write service once the cause is gone.
    """

    def __init__(self, message: str, cause: "Exception | None" = None) -> None:
        super().__init__(message)
        self.cause = cause


class CrashInjected(ReproError):
    """Raised by crash-injection hooks in tests to simulate power failure.

    Not an error in the usual sense: test harnesses install a hook in the
    simulated storage layer that raises this at a chosen sync boundary, then
    recover the store and verify durability guarantees.
    """

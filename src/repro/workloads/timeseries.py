"""Time-series workload: the empty-guard experiment of Figure 5.4.

Each iteration inserts a fresh window of sequential key space, reads it,
then deletes it.  Because FLSM never deletes guards automatically, guards
created for dead windows accumulate (the paper reaches ~9000 empty guards
by iteration twenty) — the experiment shows reads and writes are
unaffected by them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.engines.base import KeyValueStore
from repro.sim.storage import SimulatedStorage
from repro.workloads.db_bench import BenchResult
from repro.workloads.distributions import KeyCodec, value_bytes


@dataclass
class TimeSeriesIteration:
    """Per-iteration throughput results (relative series of Figure 5.4)."""

    iteration: int
    write_kops: float
    read_kops: float
    delete_kops: float
    empty_guards: int


class TimeSeriesWorkload:
    """Runs the insert/read/delete window loop against one store."""

    def __init__(
        self,
        db: KeyValueStore,
        storage: SimulatedStorage,
        *,
        keys_per_window: int = 5000,
        reads_per_window: int = 2500,
        value_size: int = 512,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.storage = storage
        self.keys_per_window = keys_per_window
        self.reads_per_window = reads_per_window
        self.value_size = value_size
        self.codec = KeyCodec(16)
        self.seed = seed

    def run(self, iterations: int) -> List[TimeSeriesIteration]:
        results = []
        for it in range(iterations):
            base = it * self.keys_per_window
            rng = random.Random(self.seed + it)

            t0 = self.storage.clock.now
            for i in range(base, base + self.keys_per_window):
                self.db.put(self.codec.encode(i), value_bytes(i, self.value_size))
            write_s = self.storage.clock.now - t0

            t0 = self.storage.clock.now
            for _ in range(self.reads_per_window):
                i = base + rng.randrange(self.keys_per_window)
                self.db.get(self.codec.encode(i))
            read_s = self.storage.clock.now - t0

            t0 = self.storage.clock.now
            for i in range(base, base + self.keys_per_window):
                self.db.delete(self.codec.encode(i))
            delete_s = self.storage.clock.now - t0

            empty = 0
            if hasattr(self.db, "empty_guard_counts"):
                empty = sum(self.db.empty_guard_counts())
            results.append(
                TimeSeriesIteration(
                    iteration=it,
                    write_kops=self.keys_per_window / write_s / 1000.0,
                    read_kops=self.reads_per_window / read_s / 1000.0,
                    delete_kops=self.keys_per_window / delete_s / 1000.0,
                    empty_guards=empty,
                )
            )
        return results


__all__ = ["TimeSeriesIteration", "TimeSeriesWorkload", "BenchResult"]

"""Workload generators and benchmark drivers.

* :mod:`repro.workloads.distributions` — uniform / zipfian / scrambled
  zipfian / latest / sequential request distributions (the YCSB family)
  and deterministic key/value encoding.
* :mod:`repro.workloads.db_bench` — the LevelDB ``db_bench`` micro
  benchmark suite the paper uses in section 5.2.
* :mod:`repro.workloads.ycsb` — the Yahoo Cloud Serving Benchmark core
  workloads A-F (Table 5.3) and their runner.
* :mod:`repro.workloads.timeseries` — the insert/read/delete-in-windows
  workload of Figure 5.4 (empty-guard accumulation).
"""

from repro.workloads.distributions import (
    KeyCodec,
    LatestGenerator,
    ScrambledZipfianGenerator,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    value_bytes,
)
from repro.workloads.db_bench import BenchResult, DBBench
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbRunner, YcsbWorkload

__all__ = [
    "KeyCodec",
    "UniformGenerator",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "SequentialGenerator",
    "value_bytes",
    "BenchResult",
    "DBBench",
    "YcsbWorkload",
    "YCSB_WORKLOADS",
    "YcsbRunner",
]

"""The db_bench micro-benchmark suite (paper section 5.2).

Mirrors the LevelDB ``db_bench`` workloads the paper runs: ``fillseq``,
``fillrandom``, ``readrandom``, ``seekrandom``, ``deleterandom``,
``overwrite`` (updates), plus a mixed readwhilewriting-style workload for
the concurrency experiment.  Each run reports throughput in simulated
KOps/s and the exact device IO the store performed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engines.base import KeyValueStore
from repro.obs.metrics import Histogram
from repro.sim.storage import SimulatedStorage
from repro.workloads.distributions import KeyCodec, value_bytes


def _latency_histogram() -> Histogram:
    """Bounded-memory per-op latency sink (replaces raw sample lists)."""
    return Histogram("latency_seconds")


@dataclass
class BenchResult:
    """Outcome of one micro-benchmark phase."""

    name: str
    ops: int
    elapsed_seconds: float
    device_bytes_written: int
    device_bytes_read: int
    user_bytes_written: int
    stall_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def kops(self) -> float:
        """Throughput in thousands of operations per simulated second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.ops / self.elapsed_seconds / 1000.0

    #: Per-operation simulated latency distribution, log-bucketed so a
    #: multi-million-op run stays O(buckets) not O(ops); percentiles are
    #: within one bucket width (~19%) of the exact sample quantile.
    latencies: Optional[Histogram] = None

    @property
    def write_amplification(self) -> float:
        if self.user_bytes_written == 0:
            return 0.0
        return self.device_bytes_written / self.user_bytes_written

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds (q in [0, 1]); 0.0 if unsampled."""
        if not self.latencies:
            return 0.0
        return self.latencies.percentile(q)

    def row(self) -> str:
        text = (
            f"{self.name:<16} {self.ops:>9} ops  {self.kops:>9.2f} KOps/s  "
            f"W {self.device_bytes_written / 1e6:>8.1f} MB  "
            f"R {self.device_bytes_read / 1e6:>8.1f} MB  "
            f"amp {self.write_amplification:>5.2f}"
        )
        if self.latencies:
            text += (
                f"  p50 {self.percentile(0.5) * 1e6:>7.1f}us"
                f"  p95 {self.percentile(0.95) * 1e6:>7.1f}us"
                f"  p99 {self.percentile(0.99) * 1e6:>8.1f}us"
            )
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (percentiles included, raw samples dropped)."""
        out: Dict[str, object] = {
            "name": self.name,
            "ops": self.ops,
            "elapsed_seconds": self.elapsed_seconds,
            "kops_per_sec": round(self.kops, 3),
            "device_bytes_written": self.device_bytes_written,
            "device_bytes_read": self.device_bytes_read,
            "user_bytes_written": self.user_bytes_written,
            "write_amplification": round(self.write_amplification, 4),
            "stall_seconds": self.stall_seconds,
        }
        if self.latencies:
            out["latency_us"] = {
                "p50": round(self.percentile(0.5) * 1e6, 3),
                "p95": round(self.percentile(0.95) * 1e6, 3),
                "p99": round(self.percentile(0.99) * 1e6, 3),
                "max": round(self.latencies.max * 1e6, 3),
                "samples": len(self.latencies),
            }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


class DBBench:
    """Drives micro-benchmarks against one store on one simulated device."""

    def __init__(
        self,
        db: KeyValueStore,
        storage: SimulatedStorage,
        *,
        num_keys: int = 20000,
        value_size: int = 1024,
        key_width: int = 16,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.storage = storage
        self.num_keys = num_keys
        self.value_size = value_size
        self.codec = KeyCodec(key_width)
        self.seed = seed
        self._value_version = 0

    # ------------------------------------------------------------------
    def _snapshot(self):
        stats = self.db.stats()
        return (
            self.storage.clock.now,
            stats.device_bytes_written,
            stats.device_bytes_read,
            stats.user_bytes_written,
            stats.stall_seconds,
            stats.block_cache_hits,
            stats.block_cache_misses,
        )

    def _result(self, name: str, ops: int, before) -> BenchResult:
        after = self._snapshot()
        result = BenchResult(
            name=name,
            ops=ops,
            elapsed_seconds=after[0] - before[0],
            device_bytes_written=after[1] - before[1],
            device_bytes_read=after[2] - before[2],
            user_bytes_written=after[3] - before[3],
            stall_seconds=after[4] - before[4],
        )
        # Decoded-block cache traffic during this phase (host-side
        # wall-clock memoization; no bearing on the simulated numbers).
        hits = after[5] - before[5]
        misses = after[6] - before[6]
        if hits or misses:
            result.extra["block_cache_hits"] = hits
            result.extra["block_cache_misses"] = misses
            result.extra["block_cache_hit_rate"] = hits / (hits + misses)
        return result

    def _value(self, index: int) -> bytes:
        return value_bytes(index + self._value_version * self.num_keys, self.value_size)

    # ------------------------------------------------------------------
    # Write workloads
    # ------------------------------------------------------------------
    def fill_seq(self, count: Optional[int] = None) -> BenchResult:
        """Insert keys in ascending order (paper: LSM's best case)."""
        n = count if count is not None else self.num_keys
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        for i in range(n):
            t0 = clock.now
            self.db.put(self.codec.encode(i), self._value(i))
            latencies.record(clock.now - t0)
        result = self._result("fillseq", n, before)
        result.latencies = latencies
        return result

    def fill_random(self, count: Optional[int] = None) -> BenchResult:
        """Insert keys in random order (the paper's headline workload)."""
        n = count if count is not None else self.num_keys
        order = list(range(n))
        random.Random(self.seed).shuffle(order)
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        for i in order:
            t0 = clock.now
            self.db.put(self.codec.encode(i), self._value(i))
            latencies.record(clock.now - t0)
        result = self._result("fillrandom", n, before)
        result.latencies = latencies
        return result

    def fill_random_large(
        self, count: Optional[int] = None, value_size: Optional[int] = None
    ) -> BenchResult:
        """``fillrandom`` with large values (the KV-separation showcase:
        with a value log the tree compacts pointers, not bodies)."""
        big = value_size if value_size is not None else max(self.value_size, 16 * 1024)
        saved = self.value_size
        self.value_size = big
        try:
            result = self.fill_random(count)
        finally:
            self.value_size = saved
        result.name = "fillrandom-large"
        return result

    def overwrite(self, count: Optional[int] = None) -> BenchResult:
        """Update existing keys in random order."""
        n = count if count is not None else self.num_keys
        self._value_version += 1
        rng = random.Random(self.seed + self._value_version)
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        for _ in range(n):
            i = rng.randrange(self.num_keys)
            t0 = clock.now
            self.db.put(self.codec.encode(i), self._value(i))
            latencies.record(clock.now - t0)
        result = self._result("overwrite", n, before)
        result.latencies = latencies
        return result

    def delete_random(self, count: Optional[int] = None) -> BenchResult:
        n = count if count is not None else self.num_keys
        order = list(range(self.num_keys))
        random.Random(self.seed + 77).shuffle(order)
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        for i in order[:n]:
            t0 = clock.now
            self.db.delete(self.codec.encode(i))
            latencies.record(clock.now - t0)
        result = self._result("deleterandom", n, before)
        result.latencies = latencies
        return result

    def fill_sync(self, count: Optional[int] = None) -> BenchResult:
        """Random inserts with a synchronous WAL (db_bench's fillsync)."""
        n = count if count is not None else self.num_keys
        opts = getattr(self.db, "options", None)
        if opts is None or not hasattr(opts, "sync_writes"):
            return self.fill_random(n)
        previous = opts.sync_writes
        opts.sync_writes = True
        try:
            order = list(range(n))
            random.Random(self.seed + 5).shuffle(order)
            clock = self.storage.clock
            latencies = _latency_histogram()
            before = self._snapshot()
            for i in order:
                t0 = clock.now
                self.db.put(self.codec.encode(i), self._value(i))
                latencies.record(clock.now - t0)
            result = self._result("fillsync", n, before)
            result.latencies = latencies
            return result
        finally:
            opts.sync_writes = previous

    # ------------------------------------------------------------------
    # Read workloads
    # ------------------------------------------------------------------
    def read_random(self, count: int, *, expect_found: bool = True) -> BenchResult:
        rng = random.Random(self.seed + 1)
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        found = 0
        for _ in range(count):
            key = self.codec.encode(rng.randrange(self.num_keys))
            t0 = clock.now
            if self.db.get(key) is not None:
                found += 1
            latencies.record(clock.now - t0)
        result = self._result("readrandom", count, before)
        result.extra["found_fraction"] = found / count if count else 0.0
        result.latencies = latencies
        return result

    def read_missing(self, count: int) -> BenchResult:
        """Point-lookups of keys that are never present (bloom showcase)."""
        rng = random.Random(self.seed + 6)
        missing_codec = KeyCodec(self.codec.width, prefix=b"none")
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        found = 0
        for _ in range(count):
            key = missing_codec.encode(rng.randrange(self.num_keys))
            t0 = clock.now
            if self.db.get(key) is not None:
                found += 1
            latencies.record(clock.now - t0)
        result = self._result("readmissing", count, before)
        result.extra["found_fraction"] = found / count if count else 0.0
        result.latencies = latencies
        return result

    def read_hot(self, count: int, hot_fraction: float = 0.01) -> BenchResult:
        """Reads confined to a small hot set (cache-friendly)."""
        rng = random.Random(self.seed + 7)
        hot = max(1, int(self.num_keys * hot_fraction))
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        for _ in range(count):
            key = self.codec.encode(rng.randrange(hot))
            t0 = clock.now
            self.db.get(key)
            latencies.record(clock.now - t0)
        result = self._result("readhot", count, before)
        result.latencies = latencies
        return result

    def read_seq(self, count: int) -> BenchResult:
        """One long sequential scan of ``count`` entries (readseq)."""
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        it = self.db.seek(self.codec.encode(0))
        scanned = 0
        while it.valid and scanned < count:
            t0 = clock.now
            it.next()
            latencies.record(clock.now - t0)
            scanned += 1
        it.close()
        result = self._result("readseq", scanned, before)
        result.latencies = latencies
        return result

    def seek_random(self, count: int, nexts: int = 0) -> BenchResult:
        """Position an iterator at random keys; ``nexts`` next() calls each."""
        rng = random.Random(self.seed + 2)
        name = "seekrandom" if nexts == 0 else f"rangequery{nexts}"
        clock = self.storage.clock
        latencies = _latency_histogram()
        before = self._snapshot()
        for _ in range(count):
            key = self.codec.encode(rng.randrange(self.num_keys))
            t0 = clock.now
            it = self.db.seek(key)
            for _ in range(nexts):
                if not it.valid:
                    break
                it.next()
            it.close()
            latencies.record(clock.now - t0)
        result = self._result(name, count, before)
        result.latencies = latencies
        return result

    # ------------------------------------------------------------------
    # Mixed workloads (Figure 5.1c)
    # ------------------------------------------------------------------
    def mixed_read_write(self, reads: int, writes: int) -> BenchResult:
        """Interleave reads and writes (concurrent reader/writer threads)."""
        rng = random.Random(self.seed + 3)
        ops: List[int] = [0] * reads + [1] * writes
        rng.shuffle(ops)
        self._value_version += 1
        clock = self.storage.clock
        latencies = _latency_histogram()
        read_lat = _latency_histogram()
        write_lat = _latency_histogram()
        before = self._snapshot()
        for op in ops:
            i = rng.randrange(self.num_keys)
            key = self.codec.encode(i)
            t0 = clock.now
            if op:
                self.db.put(key, self._value(i))
            else:
                self.db.get(key)
            elapsed = clock.now - t0
            latencies.record(elapsed)
            (write_lat if op else read_lat).record(elapsed)
        result = self._result("mixed", reads + writes, before)
        result.latencies = latencies
        # Per-op-type percentiles: the combined sample hides that writes
        # stall behind compaction while reads do not.
        for label, samples in (("read", read_lat), ("write", write_lat)):
            if samples:
                result.extra[f"{label}_p50_us"] = round(samples.percentile(0.5) * 1e6, 3)
                result.extra[f"{label}_p95_us"] = round(samples.percentile(0.95) * 1e6, 3)
                result.extra[f"{label}_p99_us"] = round(samples.percentile(0.99) * 1e6, 3)
        return result

"""Request distributions and key/value encoding.

The zipfian generator is the Gray et al. algorithm YCSB uses (constant
0.99), including the incremental-extension trick for the *latest* and
*scrambled* variants, so request skew matches the benchmark the paper
runs.  All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.util.murmur import murmur3_64

ZIPFIAN_CONSTANT = 0.99


class KeyCodec:
    """Deterministic fixed-width key encoding (paper uses 16-byte keys)."""

    def __init__(self, width: int = 16, prefix: bytes = b"user") -> None:
        if width <= len(prefix):
            raise ValueError("key width must exceed prefix length")
        self.width = width
        self.prefix = prefix
        self._digits = width - len(prefix)

    def encode(self, index: int) -> bytes:
        return self.prefix + str(index).zfill(self._digits).encode("ascii")

    def decode(self, key: bytes) -> int:
        return int(key[len(self.prefix) :])


def value_bytes(index: int, size: int) -> bytes:
    """Deterministic pseudo-random value of ``size`` bytes for ``index``."""
    return random.Random(index).randbytes(size)


class UniformGenerator:
    """Uniform over ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int = 0) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.item_count)

    def grow(self, new_count: int) -> None:
        self.item_count = max(self.item_count, new_count)


class SequentialGenerator:
    """0, 1, 2, ... (the fillseq workload)."""

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value


class ZipfianGenerator:
    """Gray et al. zipfian over ``[0, item_count)``; rank 0 is hottest.

    Supports growing the item count without recomputing zeta from scratch
    (the incremental formula YCSB uses for insert-heavy workloads).
    """

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_CONSTANT,
        seed: int = 0,
        zetan: Optional[float] = None,
    ) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.theta = theta
        self._rng = random.Random(seed)
        self.zeta2 = self._zeta_static(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.zetan = zetan if zetan is not None else self._zeta_static(item_count, theta)
        self._recompute()

    @staticmethod
    def _zeta_static(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _recompute(self) -> None:
        self.eta = (1.0 - (2.0 / self.item_count) ** (1.0 - self.theta)) / (
            1.0 - self.zeta2 / self.zetan
        )

    def grow(self, new_count: int) -> None:
        """Extend the key space (after inserts) by extending zeta."""
        if new_count <= self.item_count:
            return
        for i in range(self.item_count + 1, new_count + 1):
            self.zetan += 1.0 / (i ** self.theta)
        self.item_count = new_count
        self._recompute()

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self.eta * u - self.eta + 1.0) ** self.alpha)


class ScrambledZipfianGenerator:
    """Zipfian popularity scattered over the key space via hashing.

    YCSB's default request distribution: item popularity is zipfian but
    the popular items are spread uniformly across the keyspace instead of
    clustered at low indexes.
    """

    def __init__(self, item_count: int, seed: int = 0) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, seed=seed)

    def grow(self, new_count: int) -> None:
        self._zipf.grow(new_count)
        self.item_count = new_count

    def next(self) -> int:
        rank = self._zipf.next()
        return murmur3_64(rank.to_bytes(8, "little")) % self.item_count


class LatestGenerator:
    """Skewed toward recently inserted items (YCSB workload D)."""

    def __init__(self, item_count: int, seed: int = 0) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, seed=seed)

    def grow(self, new_count: int) -> None:
        self._zipf.grow(new_count)
        self.item_count = new_count

    def next(self) -> int:
        offset = self._zipf.next() % self.item_count
        return self.item_count - 1 - offset


def zipf_sanity_skew(gen: ZipfianGenerator, samples: int = 10000) -> float:
    """Fraction of samples hitting the hottest 1% of items (test helper)."""
    hot = max(1, gen.item_count // 100)
    hits = sum(1 for _ in range(samples) if gen.next() < hot)
    return hits / samples


def harmonic_estimate(n: int, theta: float = ZIPFIAN_CONSTANT) -> float:
    """Approximate generalized harmonic number (test/reference helper)."""
    if n < 100:
        return ZipfianGenerator._zeta_static(n, theta)
    # Euler-Maclaurin approximation of sum_{i=1..n} i^-theta.
    return (n ** (1 - theta) - 1) / (1 - theta) + 0.5 + 0.5 * n ** -theta


__all__ = [
    "KeyCodec",
    "value_bytes",
    "UniformGenerator",
    "SequentialGenerator",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "LatestGenerator",
    "zipf_sanity_skew",
    "harmonic_estimate",
]

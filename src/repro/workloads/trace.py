"""Workload trace capture and replay.

Records every mutating and reading operation issued against a store into
a compact binary trace, which can be replayed — against a different
engine, configuration, or device model — to compare behaviour on
*exactly* the same request stream.  This is how production key-value
deployments evaluate engine swaps, and it doubles as a differential
debugging aid here.

Format: one varint-framed record per operation::

    op(1) | varint klen | key [| varint vlen | value]

"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.engines.base import KeyValueStore
from repro.errors import CorruptionError
from repro.util.varint import decode_varint32, encode_varint32

OP_PUT = 1
OP_GET = 2
OP_DELETE = 3
OP_SEEK = 4

_HAS_VALUE = {OP_PUT}

#: (op, key, value) — value is b"" for ops without one.
TraceOp = Tuple[int, bytes, bytes]


def encode_trace(ops: List[TraceOp]) -> bytes:
    """Serialize a list of trace operations."""
    out = bytearray()
    for op, key, value in ops:
        if op not in (OP_PUT, OP_GET, OP_DELETE, OP_SEEK):
            raise ValueError(f"bad trace op: {op}")
        out.append(op)
        out += encode_varint32(len(key))
        out += key
        if op in _HAS_VALUE:
            out += encode_varint32(len(value))
            out += value
    return bytes(out)


def decode_trace(data: bytes) -> Iterator[TraceOp]:
    """Stream the operations of an encoded trace."""
    offset = 0
    end = len(data)
    while offset < end:
        op = data[offset]
        offset += 1
        if op not in (OP_PUT, OP_GET, OP_DELETE, OP_SEEK):
            raise CorruptionError(f"bad trace op byte: {op}")
        klen, offset = decode_varint32(data, offset)
        if offset + klen > end:
            raise CorruptionError("trace key truncated")
        key = data[offset : offset + klen]
        offset += klen
        value = b""
        if op in _HAS_VALUE:
            vlen, offset = decode_varint32(data, offset)
            if offset + vlen > end:
                raise CorruptionError("trace value truncated")
            value = data[offset : offset + vlen]
            offset += vlen
        yield (op, key, value)


class TracingStore:
    """Wraps a store, recording every operation that flows through it.

    Supports the operations trace replay understands (put/get/delete/
    seek); everything else should be called on the wrapped store
    directly.
    """

    def __init__(self, db: KeyValueStore) -> None:
        self.db = db
        self.ops: List[TraceOp] = []

    def put(self, key: bytes, value: bytes) -> None:
        self.ops.append((OP_PUT, bytes(key), bytes(value)))
        self.db.put(key, value)

    def get(self, key: bytes) -> Optional[bytes]:
        self.ops.append((OP_GET, bytes(key), b""))
        return self.db.get(key)

    def delete(self, key: bytes) -> None:
        self.ops.append((OP_DELETE, bytes(key), b""))
        self.db.delete(key)

    def seek(self, key: bytes):
        self.ops.append((OP_SEEK, bytes(key), b""))
        return self.db.seek(key)

    def encoded(self) -> bytes:
        return encode_trace(self.ops)


class ReplayResult:
    """Counters from one trace replay."""

    __slots__ = ("ops", "gets", "puts", "deletes", "seeks", "elapsed_seconds")

    def __init__(self) -> None:
        self.ops = 0
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.seeks = 0
        self.elapsed_seconds = 0.0

    @property
    def kops(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.ops / self.elapsed_seconds / 1000.0


def replay_trace(
    data: bytes, db: KeyValueStore, clock=None, seek_nexts: int = 0
) -> ReplayResult:
    """Apply an encoded trace to ``db``; returns replay counters.

    ``clock`` (a SimClock) enables simulated-time measurement;
    ``seek_nexts`` advances each replayed seek's iterator, modelling the
    range-query length of the original workload.
    """
    result = ReplayResult()
    start = clock.now if clock is not None else 0.0
    for op, key, value in decode_trace(data):
        result.ops += 1
        if op == OP_PUT:
            db.put(key, value)
            result.puts += 1
        elif op == OP_GET:
            db.get(key)
            result.gets += 1
        elif op == OP_DELETE:
            db.delete(key)
            result.deletes += 1
        else:
            it = db.seek(key)
            for _ in range(seek_nexts):
                if not it.valid:
                    break
                it.next()
            it.close()
            result.seeks += 1
    if clock is not None:
        result.elapsed_seconds = clock.now - start
    return result

"""Yahoo Cloud Serving Benchmark — core workloads A-F (Table 5.3).

Each workload is a mix of reads, updates, inserts, scans, and
read-modify-writes against a zipfian (or latest/uniform) request
distribution.  Loads A and E populate the store; workloads B-D and F run
over Load A's records, E over Load E's, exactly as Table 5.3 describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.engines.base import KeyValueStore
from repro.sim.storage import SimulatedStorage
from repro.workloads.db_bench import BenchResult
from repro.workloads.distributions import (
    KeyCodec,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    value_bytes,
)


@dataclass
class YcsbWorkload:
    """Operation mix of one YCSB workload."""

    name: str
    description: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0
    request_distribution: str = "zipfian"  # zipfian | latest | uniform
    max_scan_length: int = 100

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.read_modify_write
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name} proportions sum to {total}")


#: The six core workloads, as described in the paper's Table 5.3.
YCSB_WORKLOADS: Dict[str, YcsbWorkload] = {
    "A": YcsbWorkload(
        "A", "Session store recording recent actions", read=0.5, update=0.5
    ),
    "B": YcsbWorkload(
        "B", "Photo tagging: browse and tag", read=0.95, update=0.05
    ),
    "C": YcsbWorkload("C", "User profile cache", read=1.0),
    "D": YcsbWorkload(
        "D",
        "User status updates (read latest)",
        read=0.95,
        insert=0.05,
        request_distribution="latest",
    ),
    "E": YcsbWorkload(
        "E", "Threaded conversations", scan=0.95, insert=0.05
    ),
    "F": YcsbWorkload(
        "F", "Database read-modify-write", read=0.5, read_modify_write=0.5
    ),
}


class YcsbRunner:
    """Loads and runs YCSB workloads against one store."""

    def __init__(
        self,
        db: KeyValueStore,
        storage: SimulatedStorage,
        *,
        record_count: int = 20000,
        value_size: int = 1024,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.storage = storage
        self.record_count = record_count
        self.value_size = value_size
        self.codec = KeyCodec(16)
        self.seed = seed
        self._inserted = 0
        self._version = 0

    # ------------------------------------------------------------------
    def _snapshot(self):
        stats = self.db.stats()
        return (
            self.storage.clock.now,
            stats.device_bytes_written,
            stats.device_bytes_read,
            stats.user_bytes_written,
            stats.stall_seconds,
        )

    def _result(self, name: str, ops: int, before) -> BenchResult:
        after = self._snapshot()
        return BenchResult(
            name=name,
            ops=ops,
            elapsed_seconds=after[0] - before[0],
            device_bytes_written=after[1] - before[1],
            device_bytes_read=after[2] - before[2],
            user_bytes_written=after[3] - before[3],
            stall_seconds=after[4] - before[4],
        )

    def _value(self, index: int) -> bytes:
        return value_bytes(index + self._version * (self.record_count + 1), self.value_size)

    # ------------------------------------------------------------------
    def load(self, name: str = "Load A", count: Optional[int] = None) -> BenchResult:
        """The 100%-insert load phase (Load A / Load E)."""
        n = count if count is not None else self.record_count
        order = list(range(n))
        random.Random(self.seed).shuffle(order)
        before = self._snapshot()
        for i in order:
            self.db.put(self.codec.encode(i), self._value(i))
        self._inserted = max(self._inserted, n)
        return self._result(name, n, before)

    # ------------------------------------------------------------------
    def run(self, workload: YcsbWorkload, operations: int) -> BenchResult:
        """Execute ``operations`` ops of ``workload``; returns the result."""
        if self._inserted == 0:
            raise RuntimeError("run a load phase before a YCSB workload")
        rng = random.Random(self.seed + hash(workload.name) % 1000)
        chooser = self._make_chooser(workload)
        self._version += 1

        thresholds = [
            ("read", workload.read),
            ("update", workload.update),
            ("insert", workload.insert),
            ("scan", workload.scan),
            ("rmw", workload.read_modify_write),
        ]
        before = self._snapshot()
        for _ in range(operations):
            pick = rng.random()
            acc = 0.0
            op = "read"
            for op_name, proportion in thresholds:
                acc += proportion
                if pick < acc:
                    op = op_name
                    break
            if op == "read":
                self.db.get(self.codec.encode(self._choose(chooser)))
            elif op == "update":
                i = self._choose(chooser)
                self.db.put(self.codec.encode(i), self._value(i))
            elif op == "insert":
                i = self._inserted
                self._inserted += 1
                self.db.put(self.codec.encode(i), self._value(i))
                chooser.grow(self._inserted)
            elif op == "scan":
                start = self._choose(chooser)
                length = rng.randrange(1, workload.max_scan_length + 1)
                it = self.db.seek(self.codec.encode(start))
                for _ in range(length):
                    if not it.valid:
                        break
                    it.next()
                it.close()
            else:  # read-modify-write
                i = self._choose(chooser)
                key = self.codec.encode(i)
                self.db.get(key)
                self.db.put(key, self._value(i))
        return self._result(f"Workload {workload.name}", operations, before)

    # ------------------------------------------------------------------
    def _make_chooser(self, workload: YcsbWorkload):
        dist = workload.request_distribution
        if dist == "zipfian":
            return ScrambledZipfianGenerator(self._inserted, seed=self.seed + 11)
        if dist == "latest":
            return LatestGenerator(self._inserted, seed=self.seed + 12)
        if dist == "uniform":
            return UniformGenerator(self._inserted, seed=self.seed + 13)
        raise ValueError(f"unknown request distribution: {dist}")

    def _choose(self, chooser) -> int:
        index = chooser.next()
        if index >= self._inserted:
            index = index % self._inserted
        return index

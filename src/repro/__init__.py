"""repro — PebblesDB / Fragmented Log-Structured Merge Trees, reproduced.

A pure-Python, simulation-backed reproduction of *PebblesDB: Building
Key-Value Stores using Fragmented Log-Structured Merge Trees* (SOSP 2017).

Quickstart::

    import repro

    env = repro.Environment()                 # simulated device + clock
    db = repro.open_store("pebblesdb", env.storage)
    db.put(b"artist", b"pebbles")
    assert db.get(b"artist") == b"pebbles"
    for key, value in db.range_query(b"a", b"z"):
        ...
    print(db.stats().write_amplification)

Engines: ``pebblesdb`` (the paper's store, over FLSM), ``leveldb`` /
``hyperleveldb`` / ``rocksdb`` (leveled-LSM presets), ``btree``
(KyotoCabinet-style), ``wiredtiger`` (checkpoint+journal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engines import (
    ENGINES,
    DBIterator,
    KeyValueStore,
    Snapshot,
    StoreOptions,
    StoreStats,
)
from repro.engines.registry import create_store
from repro.sim import (
    BackgroundExecutor,
    CpuCosts,
    DeviceModel,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PageCache,
    SimClock,
    SimulatedStorage,
)

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "open_store",
    "ENGINES",
    "KeyValueStore",
    "DBIterator",
    "Snapshot",
    "StoreOptions",
    "StoreStats",
    "SimulatedStorage",
    "SimClock",
    "DeviceModel",
    "PageCache",
    "CpuCosts",
    "BackgroundExecutor",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
]


@dataclass
class Environment:
    """A simulated machine: clock, device, DRAM page cache.

    Mirrors the paper's testbed shape (section 5.1): NVMe RAID0 and a
    DRAM page cache sized so benchmark datasets can be ~3x memory.
    """

    device: DeviceModel = field(default_factory=DeviceModel.ssd_raid0)
    cache_bytes: int = 64 * 1024 * 1024
    clock: SimClock = field(default_factory=SimClock)
    #: Optional fault injector attached to the storage (see
    #: :mod:`repro.sim.faults`); also settable later via
    #: ``env.storage.set_fault_injector``.
    faults: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        self.cpu = CpuCosts()
        self.cache = PageCache(self.cache_bytes)
        self.storage = SimulatedStorage(
            self.clock, self.device, self.cache, self.cpu, faults=self.faults
        )

    @property
    def now(self) -> float:
        return self.clock.now


def open_store(
    engine: str = "pebblesdb",
    storage: Optional[SimulatedStorage] = None,
    options: Optional[StoreOptions] = None,
    prefix: Optional[str] = None,
    seed: int = 0,
) -> KeyValueStore:
    """Open (or recover) a key-value store.

    ``storage`` defaults to a fresh :class:`Environment`'s storage; reuse
    one storage across calls to host several stores on one device or to
    reopen a store after a simulated crash.
    """
    if storage is None:
        storage = Environment().storage
    return create_store(engine, storage, options=options, prefix=prefix, seed=seed)

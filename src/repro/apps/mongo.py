"""MongoDB-style document store with pluggable storage engines.

Models what the paper's section 5.4 exercises: a NoSQL store whose
*storage engine* is swappable (WiredTiger by default, or an LSM/FLSM
engine), an ``_id`` primary index, optional secondary indexes, and the
substantial per-operation application latency that dilutes the storage
engine's contribution (the paper measures PebblesDB at only 28% of a
MongoDB write's latency).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.apps.docs import Value, decode_document, encode_document
from repro.engines.base import KeyValueStore
from repro.errors import InvalidArgumentError

#: Application-side CPU per operation.
APP_OVERHEAD_SECONDS = 80.0e-6

_SEP = b"\x00"


class MongoCollection:
    """One collection: documents keyed by ``_id`` plus secondary indexes."""

    def __init__(self, store: "MongoStore", name: str) -> None:
        self._store = store
        self.name = name
        self._indexes: List[str] = []

    # ------------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Add a secondary index over ``field`` (existing docs reindexed)."""
        if field in self._indexes:
            return
        self._indexes.append(field)
        for doc_id, doc in self._iter_all():
            value = doc.get(field)
            if value is not None:
                self._store.kv.put(self._index_key(field, value, doc_id), b"")

    def _doc_key(self, doc_id: bytes) -> bytes:
        return b"c" + _SEP + self.name.encode("utf-8") + _SEP + doc_id

    def _index_key(self, field: str, value: Value, doc_id: bytes) -> bytes:
        return (
            b"x"
            + _SEP
            + self.name.encode("utf-8")
            + _SEP
            + field.encode("utf-8")
            + _SEP
            + _index_bytes(value)
            + _SEP
            + doc_id
        )

    # ------------------------------------------------------------------
    def insert_one(self, doc: Dict[str, Value]) -> bytes:
        """Insert a document; ``_id`` must be bytes (assigned if absent)."""
        self._store._charge_overhead()
        doc_id = doc.get("_id")
        if doc_id is None:
            doc_id = b"%016d" % self._store._next_id()
            doc = dict(doc, _id=doc_id)
        if not isinstance(doc_id, bytes):
            raise InvalidArgumentError("_id must be bytes")
        self._store.kv.put(self._doc_key(doc_id), encode_document(doc))
        for field in self._indexes:
            value = doc.get(field)
            if value is not None:
                self._store.kv.put(self._index_key(field, value, doc_id), b"")
        return doc_id

    def find_one(self, doc_id: bytes) -> Optional[Dict[str, Value]]:
        self._store._charge_overhead()
        raw = self._store.kv.get(self._doc_key(doc_id))
        return decode_document(raw) if raw is not None else None

    def find_by(self, field: str, value: Value, limit: int = 100) -> List[Dict[str, Value]]:
        """Equality query via a secondary index."""
        if field not in self._indexes:
            raise InvalidArgumentError(f"no index on {field!r}")
        self._store._charge_overhead()
        prefix = self._index_key(field, value, b"")
        out: List[Dict[str, Value]] = []
        it = self._store.kv.seek(prefix)
        while it.valid and it.key().startswith(prefix) and len(out) < limit:
            doc_id = it.key()[len(prefix) :]
            doc = self.find_one(doc_id)
            if doc is not None:
                out.append(doc)
            it.next()
        it.close()
        return out

    def update_one(self, doc_id: bytes, fields: Dict[str, Value]) -> bool:
        """Merge ``fields`` into the document (read-modify-write)."""
        self._store._charge_overhead()
        raw = self._store.kv.get(self._doc_key(doc_id))
        if raw is None:
            return False
        doc = decode_document(raw)
        old = dict(doc)
        doc.update(fields)
        self._store.kv.put(self._doc_key(doc_id), encode_document(doc))
        for field in self._indexes:
            if field in fields and old.get(field) != doc.get(field):
                if old.get(field) is not None:
                    self._store.kv.delete(self._index_key(field, old[field], doc_id))
                if doc.get(field) is not None:
                    self._store.kv.put(self._index_key(field, doc[field], doc_id), b"")
        return True

    def replace_one(self, doc_id: bytes, doc: Dict[str, Value]) -> None:
        """Overwrite the document without reading it first."""
        self._store._charge_overhead()
        doc = dict(doc, _id=doc_id)
        self._store.kv.put(self._doc_key(doc_id), encode_document(doc))

    def delete_one(self, doc_id: bytes) -> bool:
        self._store._charge_overhead()
        raw = self._store.kv.get(self._doc_key(doc_id))
        if raw is None:
            return False
        doc = decode_document(raw)
        for field in self._indexes:
            value = doc.get(field)
            if value is not None:
                self._store.kv.delete(self._index_key(field, value, doc_id))
        self._store.kv.delete(self._doc_key(doc_id))
        return True

    def scan(self, start_id: bytes = b"") -> Iterator[Tuple[bytes, Dict[str, Value]]]:
        """Documents with ``_id >= start_id`` in order."""
        self._store._charge_overhead()
        yield from self._iter_all(start_id)

    def _iter_all(self, start_id: bytes = b"") -> Iterator[Tuple[bytes, Dict[str, Value]]]:
        prefix = self._doc_key(b"")
        it = self._store.kv.seek(self._doc_key(start_id))
        try:
            while it.valid and it.key().startswith(prefix):
                yield it.key()[len(prefix) :], decode_document(it.value())
                it.next()
        finally:
            it.close()


class MongoStore:
    """The top-level store: named collections over one storage engine."""

    def __init__(
        self, kv: KeyValueStore, *, app_overhead: float = APP_OVERHEAD_SECONDS
    ) -> None:
        self.kv = kv
        self.app_overhead = app_overhead
        self._collections: Dict[str, MongoCollection] = {}
        self._id_counter = 0
        storage = getattr(kv, "storage", None)
        self._clock = storage.clock if storage is not None else None

    def collection(self, name: str) -> MongoCollection:
        if name not in self._collections:
            self._collections[name] = MongoCollection(self, name)
        return self._collections[name]

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def _charge_overhead(self) -> None:
        if self._clock is not None:
            self._clock.advance(self.app_overhead)


def _index_bytes(value: Value) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        return b"%020d" % value
    raise TypeError(f"unindexable value type: {type(value)!r}")

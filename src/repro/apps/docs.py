"""Compact document codec shared by the NoSQL application layers.

Documents are flat mappings of string field names to bytes / str / int
values — enough to model YCSB records and the stores' metadata without a
real BSON implementation.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import CorruptionError
from repro.util.varint import decode_varint32, encode_varint32

Value = Union[bytes, str, int]

_T_BYTES = 0
_T_STR = 1
_T_INT = 2


def encode_document(doc: Dict[str, Value]) -> bytes:
    """Serialize a flat document deterministically (sorted field order)."""
    out = bytearray()
    out += encode_varint32(len(doc))
    for name in sorted(doc):
        raw_name = name.encode("utf-8")
        out += encode_varint32(len(raw_name))
        out += raw_name
        value = doc[name]
        if isinstance(value, bool):
            raise TypeError("bool document values are ambiguous; use int")
        if isinstance(value, bytes):
            out.append(_T_BYTES)
            out += encode_varint32(len(value))
            out += value
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_T_STR)
            out += encode_varint32(len(raw))
            out += raw
        elif isinstance(value, int):
            raw = value.to_bytes(8, "little", signed=True)
            out.append(_T_INT)
            out += raw
        else:
            raise TypeError(f"unsupported document value type: {type(value)!r}")
    return bytes(out)


def decode_document(data: bytes) -> Dict[str, Value]:
    """Inverse of :func:`encode_document`."""
    doc: Dict[str, Value] = {}
    count, offset = decode_varint32(data, 0)
    for _ in range(count):
        nlen, offset = decode_varint32(data, offset)
        name = data[offset : offset + nlen].decode("utf-8")
        offset += nlen
        if offset >= len(data):
            raise CorruptionError("document truncated")
        tag = data[offset]
        offset += 1
        if tag == _T_BYTES:
            vlen, offset = decode_varint32(data, offset)
            doc[name] = data[offset : offset + vlen]
            offset += vlen
        elif tag == _T_STR:
            vlen, offset = decode_varint32(data, offset)
            doc[name] = data[offset : offset + vlen].decode("utf-8")
            offset += vlen
        elif tag == _T_INT:
            doc[name] = int.from_bytes(data[offset : offset + 8], "little", signed=True)
            offset += 8
        else:
            raise CorruptionError(f"unknown document value tag: {tag}")
    return doc

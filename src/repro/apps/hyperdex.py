"""HyperDex-style searchable NoSQL store.

HyperDex organizes data into *spaces* whose schema declares searchable
attributes; secondary indexes make attribute search possible.  Two
behaviours the paper measures are modelled explicitly:

* **Read-before-write** — HyperDex reads a key before every insert to
  decide whether it must update indexes, turning every load-phase put()
  into a get() + put() and halving the benefit of a faster write path
  (section 5.4).  ``read_before_write=False`` reproduces the paper's
  ablation of this behaviour.
* **Application latency** — request parsing, hashing, and value-dependent
  bookkeeping add per-op CPU time an order of magnitude above the
  key-value store's own cost (the paper measures 151 us per insert, of
  which PebblesDB is 22 us).  Charged per operation on the simulated
  clock.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.apps.docs import Value, decode_document, encode_document
from repro.engines.base import KeyValueStore
from repro.errors import InvalidArgumentError

#: Application-side CPU per operation (the paper's ~130 us of non-KV work).
APP_OVERHEAD_SECONDS = 120.0e-6

_DOC = b"d"
_IDX = b"i"
_SEP = b"\x00"


class HyperDexStore:
    """A minimal HyperDex: spaces, attribute search, read-before-write."""

    def __init__(
        self,
        kv: KeyValueStore,
        *,
        read_before_write: bool = True,
        app_overhead: float = APP_OVERHEAD_SECONDS,
    ) -> None:
        self.kv = kv
        self.read_before_write = read_before_write
        self.app_overhead = app_overhead
        self._schemas: Dict[str, List[str]] = {}
        storage = getattr(kv, "storage", None)
        self._clock = storage.clock if storage is not None else None

    # ------------------------------------------------------------------
    def add_space(self, space: str, searchable_attributes: List[str]) -> None:
        """Declare a space and the attributes search() may use."""
        if space in self._schemas:
            raise InvalidArgumentError(f"space exists: {space}")
        self._schemas[space] = list(searchable_attributes)

    def _charge_overhead(self) -> None:
        if self._clock is not None:
            self._clock.advance(self.app_overhead)

    def _doc_key(self, space: str, key: bytes) -> bytes:
        return _DOC + _SEP + space.encode("utf-8") + _SEP + key

    def _index_key(self, space: str, attr: str, value: bytes, key: bytes) -> bytes:
        return (
            _IDX
            + _SEP
            + space.encode("utf-8")
            + _SEP
            + attr.encode("utf-8")
            + _SEP
            + value
            + _SEP
            + key
        )

    def _schema(self, space: str) -> List[str]:
        if space not in self._schemas:
            raise InvalidArgumentError(f"unknown space: {space}")
        return self._schemas[space]

    # ------------------------------------------------------------------
    def put(self, space: str, key: bytes, doc: Dict[str, Value]) -> None:
        """Insert or update a document, maintaining attribute indexes."""
        attrs = self._schema(space)
        self._charge_overhead()
        old_doc: Optional[Dict[str, Value]] = None
        if self.read_before_write:
            old_doc = self.get(space, key, _charge=False)
        dk = self._doc_key(space, key)
        self.kv.put(dk, encode_document(doc))
        for attr in attrs:
            new_value = _index_bytes(doc.get(attr))
            old_value = _index_bytes(old_doc.get(attr)) if old_doc else None
            if old_value is not None and old_value != new_value:
                self.kv.delete(self._index_key(space, attr, old_value, key))
            if new_value is not None and new_value != old_value:
                self.kv.put(self._index_key(space, attr, new_value, key), b"")

    def get(self, space: str, key: bytes, _charge: bool = True) -> Optional[Dict[str, Value]]:
        self._schema(space)
        if _charge:
            self._charge_overhead()
        raw = self.kv.get(self._doc_key(space, key))
        return decode_document(raw) if raw is not None else None

    def delete(self, space: str, key: bytes) -> bool:
        attrs = self._schema(space)
        self._charge_overhead()
        doc = self.get(space, key, _charge=False)
        if doc is None:
            return False
        for attr in attrs:
            value = _index_bytes(doc.get(attr))
            if value is not None:
                self.kv.delete(self._index_key(space, attr, value, key))
        self.kv.delete(self._doc_key(space, key))
        return True

    # ------------------------------------------------------------------
    def search(self, space: str, attr: str, value: Value) -> List[bytes]:
        """Keys of documents whose ``attr`` equals ``value``."""
        if attr not in self._schema(space):
            raise InvalidArgumentError(f"attribute {attr!r} is not searchable")
        self._charge_overhead()
        raw = _index_bytes(value)
        assert raw is not None
        prefix = self._index_key(space, attr, raw, b"")
        keys = []
        it = self.kv.seek(prefix)
        while it.valid and it.key().startswith(prefix):
            keys.append(it.key()[len(prefix) :])
            it.next()
        it.close()
        return keys

    def search_range(
        self, space: str, attr: str, lo: Value, hi: Value
    ) -> List[bytes]:
        """Keys of documents with ``lo <= attr <= hi`` (inclusive).

        HyperDex supports range search over its subspace attributes; here
        it is served by a range scan over the attribute index.  Integer
        attributes order numerically (they are indexed zero-padded).
        Document keys must not contain NUL bytes for range search (the
        index entry separator); equality search has no such restriction.
        """
        if attr not in self._schema(space):
            raise InvalidArgumentError(f"attribute {attr!r} is not searchable")
        self._charge_overhead()
        lo_raw, hi_raw = _index_bytes(lo), _index_bytes(hi)
        assert lo_raw is not None and hi_raw is not None
        prefix = (
            _IDX + _SEP + space.encode("utf-8") + _SEP + attr.encode("utf-8") + _SEP
        )
        keys = []
        it = self.kv.seek(prefix + lo_raw)
        while it.valid and it.key().startswith(prefix):
            rest = it.key()[len(prefix):]
            value, _, doc_key = rest.rpartition(_SEP)
            if value > hi_raw:
                break
            keys.append(doc_key)
            it.next()
        it.close()
        return keys

    def scan(self, space: str, start_key: bytes) -> Iterator[Tuple[bytes, Dict[str, Value]]]:
        """Documents with key >= start_key, in key order."""
        self._schema(space)
        self._charge_overhead()
        prefix = self._doc_key(space, b"")
        it = self.kv.seek(self._doc_key(space, start_key))
        try:
            while it.valid and it.key().startswith(prefix):
                yield it.key()[len(prefix) :], decode_document(it.value())
                it.next()
        finally:
            it.close()


def _index_bytes(value: Optional[Value]) -> Optional[bytes]:
    if value is None:
        return None
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        return b"%020d" % value
    raise TypeError(f"unindexable value type: {type(value)!r}")

"""YCSB adapter: run the benchmark suite *through* a NoSQL application.

Figure 5.6 measures YCSB against HyperDex and MongoDB rather than the raw
key-value store; this adapter exposes the KeyValueStore interface the
YCSB runner drives, translating each operation into application calls
(documents with a single payload field, like YCSB's record format).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple, Union

from repro.apps.hyperdex import HyperDexStore
from repro.apps.mongo import MongoStore
from repro.engines.base import DBIterator, KeyValueStore, StoreStats

_FIELD = "field0"


class YcsbAppAdapter(KeyValueStore):
    """Adapts a HyperDexStore or MongoStore to the KeyValueStore API."""

    def __init__(
        self,
        app: Union[HyperDexStore, MongoStore],
        namespace: str = "usertable",
    ) -> None:
        self.app = app
        self.namespace = namespace
        if isinstance(app, HyperDexStore):
            app.add_space(namespace, searchable_attributes=[])
            self._mode = "hyperdex"
            self._collection = None
        else:
            self._mode = "mongo"
            self._collection = app.collection(namespace)

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        if self._mode == "hyperdex":
            self.app.put(self.namespace, key, {_FIELD: value})
        else:
            assert self._collection is not None
            self._collection.replace_one(key, {_FIELD: value})

    def get(self, key: bytes) -> Optional[bytes]:
        if self._mode == "hyperdex":
            doc = self.app.get(self.namespace, key)
        else:
            assert self._collection is not None
            doc = self._collection.find_one(key)
        if doc is None:
            return None
        value = doc.get(_FIELD)
        return value if isinstance(value, bytes) else None

    def delete(self, key: bytes) -> None:
        if self._mode == "hyperdex":
            self.app.delete(self.namespace, key)
        else:
            assert self._collection is not None
            self._collection.delete_one(key)

    def seek(self, key: bytes) -> DBIterator:
        if self._mode == "hyperdex":
            source = self.app.scan(self.namespace, key)
        else:
            assert self._collection is not None
            source = self._collection.scan(key)

        def gen() -> Iterator[Tuple[bytes, bytes]]:
            for doc_id, doc in source:
                value = doc.get(_FIELD)
                yield doc_id, value if isinstance(value, bytes) else b""

        return DBIterator(gen())

    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return self.app.kv.stats()

    def close(self) -> None:
        self.app.kv.close()

    @property
    def storage(self):
        return self.app.kv.storage

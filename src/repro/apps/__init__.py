"""NoSQL applications layered on the key-value engines (paper section 5.4).

* :mod:`repro.apps.hyperdex` — a HyperDex-style searchable document store:
  secondary attribute indexes and the read-before-write behaviour the
  paper identifies as the throughput limiter.
* :mod:`repro.apps.mongo` — a MongoDB-style document store with pluggable
  storage engines (WiredTiger-like, RocksDB preset, PebblesDB).
* :mod:`repro.apps.adapter` — YCSB adapter so the benchmark suite can run
  through either application.
"""

from repro.apps.docs import decode_document, encode_document
from repro.apps.hyperdex import HyperDexStore
from repro.apps.mongo import MongoCollection, MongoStore
from repro.apps.adapter import YcsbAppAdapter

__all__ = [
    "encode_document",
    "decode_document",
    "HyperDexStore",
    "MongoStore",
    "MongoCollection",
    "YcsbAppAdapter",
]

"""PebblesDB: a key-value store over Fragmented Log-Structured Merge trees.

The FLSM rules implemented here (paper chapter 3):

* Levels 1..N-1 are partitioned by **guards**; sstables inside a guard may
  overlap, guards never do.
* Guard keys are selected probabilistically from inserted keys by the
  MurmurHash trailing-bits rule and collected in an in-memory
  *uncommitted* set per level; they take effect — and are persisted — only
  at the next compaction into that level (section 3.3).
* Compaction of a guard merge-sorts its sstables and *partitions* the
  stream by the next level's guards, appending one fragment per child
  guard.  Data is rewritten only (a) in the last level, where fragments
  must merge with a full guard, and (b) in the second-to-last level when
  merging into the last level would cost more than
  ``last_level_merge_io_ratio`` times the input (section 3.4).
* An sstable that an uncommitted guard would split is not rewritten in its
  own level: it is compacted down to the next level (section 3.3).
* Guard deletion is asynchronous and metadata-only: the deleted guard's
  range is absorbed by its left neighbour (section 3.3).

On top of FLSM, the PebblesDB optimizations (chapter 4): per-sstable bloom
filters, seek-based compaction after a run of consecutive seeks,
aggressive level compaction (level *i* within 25% of the size of level
*i+1*), and parallel seeks in the last level, each independently
switchable for the ablation study.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.guards import Guard, GuardedLevel, GuardPicker
from repro.engines.base import Entry, LSMStoreBase
from repro.engines.options import StoreOptions
from repro.memtable.memtable import GetResult
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.sstable import SSTableBuilder, compaction_iterator, merging_iterator
from repro.util.keys import InternalKey, KIND_DELETE, KIND_PUT, KIND_SEEK, MAX_SEQUENCE
from repro.util.murmur import murmur3_64
from repro.version import VersionEdit
from repro.version.files import FileMetadata
from repro.version.manifest import GUARD_KEY, GUARD_NONE, GUARD_SENTINEL


def _key_label(key: Optional[bytes]) -> str:
    """Readable, deterministic span-attribute form of a guard key."""
    if key is None:
        return "<sentinel>"
    return key.decode("ascii", "backslashreplace")


class _SwitchAccount:
    """An account that accumulates until attached to a real account.

    Used to *measure* the positioning cost of each sstable during a
    parallel seek: the per-table costs are collected separately, the
    foreground is charged ``max`` of them (the tables are probed by
    concurrent threads, paper section 4.2), and subsequent iteration
    charges flow through to the foreground account.
    """

    __slots__ = ("name", "measured", "_target")

    def __init__(self, name: str) -> None:
        self.name = name
        self.measured = 0.0
        self._target: Optional[IoAccount] = None

    def charge(self, seconds: float) -> None:
        if self._target is None:
            self.measured += seconds
        else:
            self._target.charge(seconds)

    def attach(self, target: IoAccount) -> None:
        self._target = target


class _Peekable:
    """Iterator wrapper with one-entry lookahead (partitioning helper)."""

    __slots__ = ("_it", "_head", "_has")

    def __init__(self, it: Iterator[Entry]) -> None:
        self._it = it
        self._head: Optional[Entry] = None
        self._has = False
        self._advance()

    def _advance(self) -> None:
        try:
            self._head = next(self._it)
            self._has = True
        except StopIteration:
            self._head = None
            self._has = False

    @property
    def has_next(self) -> bool:
        return self._has

    def peek(self) -> Entry:
        assert self._head is not None
        return self._head

    def take(self) -> Entry:
        entry = self._head
        assert entry is not None
        self._advance()
        return entry

    def take_until(self, hi: Optional[bytes]) -> Iterator[Entry]:
        """Yield entries with user_key < hi (all remaining if hi is None)."""
        while self._has and (hi is None or self._head[0].user_key < hi):  # type: ignore[index]
            yield self.take()


class PebblesDBStore(LSMStoreBase):
    """The paper's key-value store, built on FLSM."""

    def __init__(
        self,
        storage: SimulatedStorage,
        options: Optional[StoreOptions] = None,
        prefix: str = "db/",
        seed: int = 0,
    ) -> None:
        opts = options if options is not None else StoreOptions.pebblesdb()
        self._level0: List[FileMetadata] = []
        self._guarded: List[Optional[GuardedLevel]] = [None]
        for level in range(1, opts.num_levels):
            self._guarded.append(GuardedLevel(level))
        self._uncommitted: List[Set[bytes]] = [set() for _ in range(opts.num_levels)]
        #: Guard keys removed from the uncommitted set at job submission
        #: but not yet applied to the level (the job is in flight).
        self._committing: Set[Tuple[int, bytes]] = set()
        self._pending_guard_deletions: Set[bytes] = set()
        self._busy: Set[int] = set()
        self._picker = GuardPicker(
            opts.top_level_bits, opts.bit_decrement, opts.num_levels
        )
        self._consecutive_seeks = 0
        self._seek_compaction_due = False
        self._touched_guards: List[Tuple[int, Optional[bytes]]] = []
        self.guards_selected = 0
        # Conflict map for in-flight compactions.  Each job holds one
        # claim per level it touches, a half-open key range ``(level, lo,
        # hi)`` with None as the open end; a new job may only start when
        # none of its claims overlaps a held claim on the same level.
        # Guard commits apply at job completion, so a job's target claim
        # is widened to the *committed-guard boundaries* covering its
        # range — any guard the job may commit, split, or force-merge
        # falls inside the claim, and disjointly-claimed guard jobs can
        # run concurrently on separate worker timelines.  With
        # ``compaction_scheduler="level"`` claims degrade to whole-level
        # ranges, reproducing the historical per-level serialization.
        self._claims: dict = {}
        self._claim_seq = 0
        # Bytes an in-flight job will remove from its source level when
        # it applies; size triggers subtract this so several workers do
        # not over-compact the same level (write-amp stability).
        self._inflight_outflow: dict = {}
        super().__init__(storage, opts, prefix=prefix, seed=seed)

    # ==================================================================
    # Guard selection (paper section 4.4)
    # ==================================================================
    def _on_insert_key(self, key: bytes) -> None:
        self._consecutive_seeks = 0
        self._user_acct.charge(self.cpu.charge("guard_hash", 0.3e-6))
        level = self._picker.guard_level(key)
        if level is None:
            return
        self.guards_selected += 1
        for lvl in range(level, self.options.num_levels):
            guarded = self._guarded[lvl]
            assert guarded is not None
            if not guarded.has_guard(key):
                self._uncommitted[lvl].add(key)

    # ==================================================================
    # State installation
    # ==================================================================
    def _install_flush(self, metas: List[FileMetadata], edit: VersionEdit) -> None:
        for meta in metas:
            self._level0.insert(0, meta)
            edit.add_file(0, meta, GUARD_NONE)

    def _level0_file_count(self) -> int:
        return len(self._level0)

    def level_sizes(self) -> List[int]:
        sizes = [sum(f.file_size for f in self._level0)]
        for guarded in self._guarded[1:]:
            assert guarded is not None
            sizes.append(guarded.size_bytes)
        return sizes

    def sstable_file_numbers(self) -> List[int]:
        numbers = [f.number for f in self._level0]
        for guarded in self._guarded[1:]:
            assert guarded is not None
            numbers.extend(f.number for f in guarded.all_files())
        return numbers

    def sstable_sizes(self) -> List[int]:
        sizes = [f.file_size for f in self._level0]
        for guarded in self._guarded[1:]:
            assert guarded is not None
            sizes.extend(f.file_size for f in guarded.all_files())
        return sizes

    def files_per_level(self) -> List[int]:
        counts = [len(self._level0)]
        for guarded in self._guarded[1:]:
            assert guarded is not None
            counts.append(sum(1 for _ in guarded.all_files()))
        return counts

    def live_files(self) -> List[FileMetadata]:
        files = list(self._level0)
        for guarded in self._guarded[1:]:
            assert guarded is not None
            files.extend(guarded.all_files())
        return files

    def compact_range(self, lo: bytes, hi: bytes) -> None:
        """Compact every guard whose data overlaps ``[lo, hi]`` downward.

        The FLSM equivalent of LevelDB's CompactRange: Level 0 drains
        first (its files may span any range), then overlapping guards are
        compacted level by level.
        """
        self.flush_memtable()
        self.executor.wait_all()
        if any(f.overlaps(lo, hi) for f in self._level0):
            if self._claims_available(self._level0_claims()):
                if not self._submit_level0_protected():
                    return
                self.executor.wait_all()
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            for guard in list(guarded.guards()):
                if not guard.files or self._guard_busy(guard):
                    continue
                if not any(f.overlaps(lo, hi) for f in guard.files):
                    continue
                if self._claims_available(self._guard_claims(level, guard)):
                    if not self._submit_guard_protected(level, guard):
                        return
                    self.executor.wait_all()
            self.executor.wait_all()

    def _extra_property(self, name: str) -> Optional[str]:
        if name == "repro.guards":
            return " ".join(str(n) for n in self.guard_counts())
        if name == "repro.empty-guards":
            return " ".join(str(n) for n in self.empty_guard_counts())
        if name == "repro.uncommitted-guards":
            return " ".join(str(len(s)) for s in self._uncommitted)
        return None

    def _extra_property_names(self) -> List[str]:
        return ["repro.guards", "repro.empty-guards", "repro.uncommitted-guards"]

    def guard_counts(self) -> List[int]:
        """Committed guards per level (diagnostics, Figure 3.1/5.4)."""
        return [0] + [len(g) for g in self._guarded[1:] if g is not None]

    def empty_guard_counts(self) -> List[int]:
        counts = [0]
        for guarded in self._guarded[1:]:
            assert guarded is not None
            counts.append(sum(1 for g in guarded.guards() if not g.files and not g.is_sentinel))
        return counts

    # ==================================================================
    # Reads (paper sections 3.4 and 4.3)
    # ==================================================================
    def _get_from_tables(self, key: bytes, snapshot: int, account: IoAccount) -> GetResult:
        # One body for both the traced and untraced paths (an extra call
        # per get is measurable); the try/finally is free when nothing
        # raises.
        trc = self.tracer
        span = trc.span("table.search") if trc is not None else None
        try:
            # Level 0 first; files may overlap arbitrarily, newest
            # sequence wins.  One interned probe key serves every table
            # probed for this lookup (readers would otherwise rebuild it,
            # and its memoized sort tuple, per file), and one murmur
            # digest serves every bloom filter screened.
            probe = InternalKey(key, min(snapshot, MAX_SEQUENCE), KIND_SEEK)
            kh = murmur3_64(key)
            get_reader = self._get_reader
            probed = 0
            bloom_skipped = 0
            best0: Optional[GetResult] = None
            level_probed = level_skipped = 0
            for meta in self._level0:
                if not meta.overlaps(key, key):
                    continue
                reader = get_reader(meta.number, account)
                if not reader.may_contain(key, account, kh):
                    level_skipped += 1
                    continue
                level_probed += 1
                result = reader.get(key, snapshot, account, probe)
                if result.found and (best0 is None or result.sequence > best0.sequence):
                    best0 = result
            if level_skipped:
                self._probe_bloom[0] += level_skipped
                bloom_skipped += level_skipped
            if level_probed:
                self._probe_files[0] += level_probed
                probed += level_probed
            if best0 is not None:
                if span is not None:
                    span.set(
                        level=0,
                        files_probed=probed,
                        bloom_skipped=bloom_skipped,
                        found=True,
                    )
                return best0
            # Guarded levels: one guard per level, every sstable in the guard.
            for level, guarded in enumerate(self._guarded[1:], start=1):
                assert guarded is not None
                if not len(guarded) and not guarded.sentinel.files:
                    continue
                account.charge(
                    self.cpu.charge("level_binary_search", self.cpu.level_binary_search)
                )
                guard = guarded.find_guard(key)
                best: Optional[GetResult] = None
                best_seq = -1
                level_probed = level_skipped = 0
                for meta in reversed(guard.files):
                    if not meta.overlaps(key, key):
                        continue
                    reader = get_reader(meta.number, account)
                    if not reader.may_contain(key, account, kh):
                        level_skipped += 1
                        continue
                    level_probed += 1
                    result = reader.get(key, snapshot, account, probe)
                    if result.found and result.sequence > best_seq:
                        best, best_seq = result, result.sequence
                if level_skipped:
                    self._probe_bloom[level] += level_skipped
                    bloom_skipped += level_skipped
                if level_probed:
                    self._probe_files[level] += level_probed
                    probed += level_probed
                if best is not None:
                    if span is not None:
                        span.set(
                            level=level,
                            guard=_key_label(guard.key),
                            guard_files=len(guard.files),
                            files_probed=probed,
                            bloom_skipped=bloom_skipped,
                            found=True,
                        )
                    return best
            if span is not None:
                span.set(files_probed=probed, bloom_skipped=bloom_skipped, found=False)
            return GetResult(False, False, None)
        except BaseException as exc:
            if span is not None:
                span.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            if span is not None:
                span.end()

    # ------------------------------------------------------------------
    def _table_iterators(
        self, start: Optional[bytes], account: IoAccount
    ) -> List[Iterator[Entry]]:
        start_key = start if start is not None else b""
        probe = InternalKey(start_key, MAX_SEQUENCE, KIND_SEEK)
        iters: List[Iterator[Entry]] = []
        positioned_tables = 0
        for meta in list(self._level0):
            if meta.largest.user_key < start_key:
                continue
            iters.append(self._file_iter(meta, probe, account))
            positioned_tables += 1
        parallel_level = self._parallel_seek_level()
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            if guarded.size_bytes == 0:
                continue
            parallel = (
                self.options.enable_parallel_seeks and level == parallel_level
            )
            iters.append(self._guarded_level_iter(level, start_key, probe, account, parallel))
            first_guard = guarded.find_guard(start_key)
            positioned_tables += len(first_guard.files)
            self._touched_guards.append((level, first_guard.key))
            if len(self._touched_guards) > 128:
                del self._touched_guards[:-64]
        if positioned_tables:
            account.charge(
                self.cpu.charge(
                    "iterator_seek",
                    self.cpu.iterator_seek_per_table * positioned_tables,
                )
            )
        return iters

    def _file_iter(
        self, meta: FileMetadata, probe: InternalKey, account: IoAccount
    ) -> Iterator[Entry]:
        self._ref_file(meta.number)
        try:
            reader = self._get_reader(meta.number, account)
            yield from reader.seek(probe, account)
        finally:
            self._unref_file(meta.number)

    def _guarded_level_iter(
        self,
        level: int,
        start_key: bytes,
        probe: InternalKey,
        account: IoAccount,
        parallel: bool,
    ) -> Iterator[Entry]:
        guarded = self._guarded[level]
        assert guarded is not None
        guard_snapshots = [list(g.files) for g in guarded.guards_from(start_key)]
        first = True
        for files in guard_snapshots:
            if not files:
                first = False
                continue
            for meta in files:
                self._ref_file(meta.number)
            try:
                if first and parallel and len(files) > 1:
                    file_iters = self._parallel_position(files, probe, account)
                elif first:
                    file_iters = [
                        self._get_reader(f.number, account).seek(probe, account)
                        for f in files
                    ]
                else:
                    file_iters = [
                        self._get_reader(f.number, account).iter_all(account)
                        for f in files
                    ]
                yield from heapq.merge(*file_iters, key=lambda e: e[0])
            finally:
                for meta in files:
                    self._unref_file(meta.number)
            first = False

    def _parallel_position(
        self, files: Sequence[FileMetadata], probe: InternalKey, account: IoAccount
    ) -> List[Iterator[Entry]]:
        """Position iterators on every file of a guard "in parallel".

        Each table's positioning cost is measured on a private account;
        the foreground pays the maximum plus a per-thread dispatch cost
        instead of the sum (paper section 4.2).
        """
        out: List[Iterator[Entry]] = []
        switches: List[_SwitchAccount] = []
        costs: List[float] = []
        for meta in files:
            switch = _SwitchAccount(account.name)
            reader = self._get_reader(meta.number, account)
            gen = reader.seek(probe, switch)  # type: ignore[arg-type]
            head = next(gen, None)
            costs.append(switch.measured)
            switches.append(switch)
            if head is not None:
                out.append(chain([head], gen))
        dispatch = self.cpu.parallel_seek_dispatch * len(files)
        account.charge(max(costs) + self.cpu.charge("parallel_seek", dispatch))
        for switch in switches:
            switch.attach(account)
        return out

    def _table_iterators_reverse(
        self, start: Optional[bytes], account: IoAccount
    ) -> List[Iterator[Entry]]:
        bound = start
        iters: List[Iterator[Entry]] = []
        for meta in list(self._level0):
            if bound is not None and meta.smallest.user_key > bound:
                continue
            iters.append(self._file_iter_reverse(meta, bound, account))
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            if guarded.size_bytes == 0:
                continue
            iters.append(self._guarded_level_iter_reverse(guarded, bound, account))
        return iters

    def _file_iter_reverse(
        self, meta: FileMetadata, bound: Optional[bytes], account: IoAccount
    ) -> Iterator[Entry]:
        self._ref_file(meta.number)
        try:
            reader = self._get_reader(meta.number, account)
            yield from reader.iter_reverse(account, max_user_key=bound)
        finally:
            self._unref_file(meta.number)

    def _guarded_level_iter_reverse(
        self, guarded: GuardedLevel, bound: Optional[bytes], account: IoAccount
    ) -> Iterator[Entry]:
        """Walk guards in descending key order, merging each guard's
        (mutually overlapping) sstables backward."""
        guards = list(guarded.guards())
        if bound is not None:
            idx = guarded.guard_index(bound)  # 0 = sentinel
            guards = guards[: idx + 1]
        for guard in reversed(guards):
            files = list(guard.files)
            if not files:
                continue
            for meta in files:
                self._ref_file(meta.number)
            try:
                file_iters = [
                    self._get_reader(f.number, account).iter_reverse(
                        account, max_user_key=bound
                    )
                    for f in files
                ]
                yield from heapq.merge(
                    *file_iters, key=lambda e: e[0], reverse=True
                )
            finally:
                for meta in files:
                    self._unref_file(meta.number)

    def _last_populated_level(self) -> int:
        for level in range(self.options.num_levels - 1, 0, -1):
            guarded = self._guarded[level]
            if guarded is not None and guarded.size_bytes > 0:
                return level
        return 0

    def _parallel_seek_level(self) -> int:
        """The level parallel seeks apply to (paper section 4.2).

        The paper's heuristic is "the last level": it holds the most
        data, which is cold and therefore actually pays storage IO when
        probed.  In a partially compacted store the bulk of the data can
        sit one level above the deepest one, so we pick the deepest level
        holding the largest share of bytes — the same intent.
        """
        best_level, best_bytes = 0, 0
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            if guarded.size_bytes >= best_bytes and guarded.size_bytes > 0:
                best_level, best_bytes = level, guarded.size_bytes
        return best_level

    # ------------------------------------------------------------------
    def _note_seek(self) -> None:
        self._consecutive_seeks += 1
        opts = self.options
        if (
            opts.enable_seek_based_compaction
            and self._consecutive_seeks % opts.seek_compaction_threshold == 0
        ):
            self._seek_compaction_due = True
            self._schedule_compactions()

    # ==================================================================
    # Compaction (paper sections 3.4, 4.2)
    # ==================================================================
    def _schedule_compactions(self) -> None:
        if self._background_error is not None:
            return
        for _ in range(64):
            if not self._pick_and_submit():
                break

    def _pick_and_submit(self) -> bool:
        opts = self.options
        # Guard deletions are metadata-only; process them first.
        if self._pending_guard_deletions:
            self._apply_guard_deletions()
        self._l0_conflict_blocked = False
        if not self._has_parallel_slot():
            # Every slot is busy; note when a due Level-0 compaction is
            # the work being held back (stall attribution).
            if (
                len(self._level0) >= opts.level0_compaction_trigger
                and not any(f.number in self._busy for f in self._level0)
            ):
                self._l0_conflict_blocked = True
            return False
        candidates = self._collect_candidates()
        if not candidates:
            # Priority 4: seek-triggered work.
            if self._seek_compaction_due:
                self._seek_compaction_due = False
                return self._submit_seek_compactions(self.level_sizes())
            return False
        idx = 0
        if self._dispatch_policy is not None:
            idx = self._dispatch_policy(candidates) % len(candidates)
        kind, level, guard, _reason = candidates[idx]
        if kind == "level0":
            return self._submit_level0_protected()
        return self._submit_guard_protected(level, guard)

    def _collect_candidates(self) -> List[Tuple[str, int, Optional[Guard], str]]:
        """Runnable compaction candidates, in deterministic priority order.

        Each entry is ``(kind, level, guard, reason)``.  A candidate is
        listed only when its conflict-map claims are free, so whichever
        one the dispatch policy picks can be submitted immediately; work
        that is due but claim-blocked bumps ``compaction_conflicts`` and
        is re-picked once the blocking job applies.
        """
        opts = self.options
        candidates: List[Tuple[str, int, Optional[Guard], str]] = []
        # Priority 1: Level 0 file count.
        if (
            len(self._level0) >= opts.level0_compaction_trigger
            and not any(f.number in self._busy for f in self._level0)
        ):
            if self._claims_available(self._level0_claims()):
                candidates.append(("level0", 0, None, "level0"))
            else:
                self._l0_conflict_blocked = True
                self._stats.compaction_conflicts += 1
        # Priority 2: over-full guards (max_sstables_per_guard, section 3.5).
        trigger = max(2, opts.max_sstables_per_guard)
        seen: Set[Tuple[int, Optional[bytes]]] = set()
        for level in range(1, opts.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            for guard in guarded.guards():
                if guard.num_files >= trigger and not self._guard_busy(guard):
                    if self._claims_available(self._guard_claims(level, guard)):
                        candidates.append(("guard", level, guard, "overfull"))
                        seen.add((level, guard.key))
                    else:
                        self._stats.compaction_conflicts += 1
        # Priority 3: level size targets, net of in-flight outflow.
        sizes = self.level_sizes()
        for level in range(1, opts.num_levels - 1):
            effective = sizes[level] - self._inflight_outflow.get(level, 0)
            if effective >= opts.level_target_bytes(level) * opts.compaction_eagerness:
                guard = self._largest_idle_guard(level)
                if guard is not None and (level, guard.key) not in seen:
                    candidates.append(("guard", level, guard, "size"))
        if self._l0_conflict_blocked and candidates:
            # A due Level-0 compaction is waiting on the conflict map;
            # submitting more work over the ranges it needs would starve
            # it, so only disjoint candidates stay runnable.
            l0_claims = self._level0_claims()
            candidates = [
                c
                for c in candidates
                if c[2] is not None
                and not self._claims_conflict(
                    self._guard_claims(c[1], c[2]), l0_claims
                )
            ]
        return candidates

    # ------------------------------------------------------------------
    # Fault-protected submission (see LSMStoreBase._run_protected)
    # ------------------------------------------------------------------
    def _submit_level0_protected(self) -> bool:
        self._run_protected("compaction", self._submit_level0_compaction)
        return self._background_error is None

    def _submit_guard_protected(self, level: int, guard: Guard) -> bool:
        self._run_protected(
            "compaction", lambda: self._submit_guard_compaction(level, guard)
        )
        return self._background_error is None

    def _capture_background_state(self):
        # Everything a compaction submit mutates before its job is queued:
        # busy files, conflict-map claims and outflow accounting, the
        # guard-commit bookkeeping, and the seek-compaction inputs.
        return (
            set(self._busy),
            dict(self._claims),
            dict(self._inflight_outflow),
            self._compactions_inflight,
            [set(keys) for keys in self._uncommitted],
            set(self._committing),
            list(self._touched_guards),
            set(self._pending_guard_deletions),
            self._seek_compaction_due,
        )

    def _restore_background_state(self, snapshot) -> None:
        (
            self._busy,
            self._claims,
            self._inflight_outflow,
            self._compactions_inflight,
            self._uncommitted,
            self._committing,
            self._touched_guards,
            self._pending_guard_deletions,
            self._seek_compaction_due,
        ) = snapshot

    def _reset_scheduling_state(self) -> None:
        # resume() runs after wait_all(): any remaining marker is stale.
        self._busy.clear()
        self._claims.clear()
        self._inflight_outflow.clear()
        self._compactions_inflight = 0

    def _guard_busy(self, guard: Guard) -> bool:
        return any(f.number in self._busy for f in guard.files)

    # ------------------------------------------------------------------
    # Conflict map: per-(level, key-range) claims held by in-flight jobs
    # ------------------------------------------------------------------
    def _scheduler_mode(self) -> str:
        return self.options.compaction_scheduler

    def _max_parallel_compactions(self) -> int:
        cap = self.options.max_parallel_compactions
        return cap if cap is not None else self.executor.workers

    def _has_parallel_slot(self) -> bool:
        return len(self._claims) < self._max_parallel_compactions()

    @staticmethod
    def _ranges_overlap(
        lo1: Optional[bytes],
        hi1: Optional[bytes],
        lo2: Optional[bytes],
        hi2: Optional[bytes],
    ) -> bool:
        """Half-open range intersection test; None is an open end."""
        if hi1 is not None and lo2 is not None and hi1 <= lo2:
            return False
        if hi2 is not None and lo1 is not None and hi2 <= lo1:
            return False
        return True

    def _claims_conflict(self, a, b) -> bool:
        return any(
            la == lb and self._ranges_overlap(loa, hia, lob, hib)
            for la, loa, hia in a
            for lb, lob, hib in b
        )

    def _claims_available(self, claims) -> bool:
        """True when no in-flight job holds an overlapping claim."""
        return not any(
            self._claims_conflict(held, claims)
            for held, _, _ in self._claims.values()
        )

    def _acquire_claims(self, claims, source_level: int, outflow: int) -> int:
        """Register a job's claims; returns the token its apply releases."""
        self._claim_seq += 1
        token = self._claim_seq
        self._claims[token] = (tuple(claims), source_level, outflow)
        self._inflight_outflow[source_level] = (
            self._inflight_outflow.get(source_level, 0) + outflow
        )
        self._note_compaction_inflight(1)
        return token

    def _release_claims(self, token: Optional[int]) -> None:
        if token is None:
            return
        entry = self._claims.pop(token, None)
        if entry is None:
            return  # reset_scheduling_state already dropped it
        _, source_level, outflow = entry
        remaining = self._inflight_outflow.get(source_level, 0) - outflow
        if remaining > 0:
            self._inflight_outflow[source_level] = remaining
        else:
            self._inflight_outflow.pop(source_level, None)
        self._note_compaction_inflight(-1)

    def _level0_claims(self):
        """A Level-0 compaction may touch any key: whole-level claims.

        Level-0 files overlap arbitrarily and the job commits guards
        across all of Level 1, so it claims both levels end to end.
        """
        return [(0, None, None), (1, None, None)]

    def _guard_claims(self, level: int, guard: Guard):
        """Claims for compacting ``guard`` at ``level`` into ``level+1``.

        The source claim is the guard's own range.  The target claim is
        that range *widened to the committed-guard boundaries covering
        it*: guard commits, straddler consumption, forced merges with
        full guards, and the splits `_add_guard_live` performs at apply
        all stay inside the covering guards of the source range, so two
        jobs with disjoint widened claims cannot touch the same target
        guard.  A range end that is itself a committed target boundary
        needs no widening — which is what lets adjacent source guards
        compact concurrently once their shared boundary is committed.
        """
        opts = self.options
        last = opts.num_levels - 1
        if opts.compaction_scheduler == "level":
            if level == last:
                return [(level, None, None)]
            return [(level, None, None), (level + 1, None, None)]
        guarded = self._guarded[level]
        assert guarded is not None
        lo, hi = guarded.guard_range(guard)
        claims = [(level, lo, hi)]
        if level == last:
            # Rewrite-in-place touches only the guard itself.
            return claims
        target_guarded = self._guarded[level + 1]
        assert target_guarded is not None
        if lo is None:
            lo_t: Optional[bytes] = None
        else:
            lo_t = target_guarded.guard_range(target_guarded.find_guard(lo))[0]
        if hi is None:
            hi_t: Optional[bytes] = None
        elif target_guarded.has_guard(hi):
            hi_t = hi
        else:
            hi_t = target_guarded.guard_range(target_guarded.find_guard(hi))[1]
        claims.append((level + 1, lo_t, hi_t))
        return claims

    def _largest_idle_guard(self, level: int) -> Optional[Guard]:
        guarded = self._guarded[level]
        assert guarded is not None
        candidates = []
        blocked = 0
        for g in guarded.guards():
            if not g.files or self._guard_busy(g):
                continue
            if self._claims_available(self._guard_claims(level, g)):
                candidates.append(g)
            else:
                blocked += 1
        if not candidates:
            if blocked:
                self._stats.compaction_conflicts += 1
            return None
        return max(candidates, key=lambda g: g.size_bytes)

    def _submit_seek_compactions(self, sizes: List[int]) -> bool:
        """Seek-based + aggressive compaction (paper section 4.2)."""
        opts = self.options
        submitted = False
        # Merge multi-sstable guards recently touched by seeks.
        touched, self._touched_guards = self._touched_guards, []
        seen = set()
        for level, key in touched:
            if (level, key) in seen:
                continue
            seen.add((level, key))
            guarded = self._guarded[level]
            if guarded is None:
                continue
            guard = guarded.find_guard(key if key is not None else b"")
            if (
                guard.num_files > 1
                and not self._guard_busy(guard)
                and self._has_parallel_slot()
                and self._claims_available(self._guard_claims(level, guard))
            ):
                if not self._submit_guard_protected(level, guard):
                    return submitted
                submitted = True
        # Aggressive level compaction: push small levels down.
        if opts.enable_aggressive_seek_compaction:
            for level in range(1, opts.num_levels - 1):
                if not sizes[level] or not sizes[level + 1]:
                    continue
                if sizes[level] >= opts.aggressive_compaction_ratio * sizes[level + 1]:
                    guarded = self._guarded[level]
                    assert guarded is not None
                    for guard in list(guarded.non_empty_guards()):
                        if (
                            not self._guard_busy(guard)
                            and self._has_parallel_slot()
                            and self._claims_available(
                                self._guard_claims(level, guard)
                            )
                        ):
                            if not self._submit_guard_protected(level, guard):
                                return submitted
                            submitted = True
                    break
        return submitted

    # ------------------------------------------------------------------
    # Level 0 -> Level 1
    # ------------------------------------------------------------------
    def _submit_level0_compaction(self) -> None:
        inputs = list(self._level0)
        for meta in inputs:
            self._busy.add(meta.number)
        token = self._acquire_claims(
            self._level0_claims(), 0, sum(f.file_size for f in inputs)
        )
        acct = self.storage.background_account(self.prefix + "compaction.guard.L0")
        gcctx = self._vlog_context(acct)
        edit = VersionEdit()
        new_keys, straddlers = self._commit_target_guards(1, None, None, edit)
        try:
            placements, merged_away = self._compact_stream_into(
                inputs, 1, acct, edit, extra_inputs=straddlers,
                new_keys=new_keys, gcctx=gcctx,
            )
        except BaseException:
            if gcctx is not None:
                gcctx.abandon()
            raise
        self._finalize_compaction_job(
            0, inputs + straddlers + merged_away, placements, edit, acct,
            new_keys, token, gcctx,
        )

    # ------------------------------------------------------------------
    # Guard at level i -> level i+1
    # ------------------------------------------------------------------
    def _submit_guard_compaction(self, level: int, guard: Guard) -> None:
        opts = self.options
        inputs = list(guard.files)
        if not inputs:
            return
        claims = self._guard_claims(level, guard)
        for meta in inputs:
            self._busy.add(meta.number)
        token = self._acquire_claims(
            claims, level, sum(f.file_size for f in inputs)
        )
        acct = self.storage.background_account(
            self.prefix + f"compaction.guard.L{level}"
        )
        gcctx = self._vlog_context(acct)
        edit = VersionEdit()
        last = opts.num_levels - 1

        if level == last:
            # Last level: rewrite the guard in place as one sstable.
            try:
                placements = self._rewrite_guard_in_place(level, inputs, acct, gcctx)
            except BaseException:
                if gcctx is not None:
                    gcctx.abandon()
                raise
            self._finalize_compaction_job(
                level, inputs, placements, edit, acct, [], token, gcctx
            )
            return

        target = level + 1
        guarded = self._guarded[level]
        assert guarded is not None
        lo, hi = guarded.guard_range(guard)
        new_keys, straddlers = self._commit_target_guards(target, lo, hi, edit)

        if target == last:
            # Second-to-last level heuristic (paper section 3.4): estimate
            # the merge IO forced by full last-level guards; if it exceeds
            # the threshold, rewrite in place instead of pushing down.
            input_bytes = sum(f.file_size for f in inputs)
            merge_bytes = self._estimate_last_level_merge_io(target, lo, hi, input_bytes)
            if input_bytes and merge_bytes >= opts.last_level_merge_io_ratio * input_bytes:
                self._rollback_guard_commit(target, new_keys, straddlers, edit)
                try:
                    placements = self._rewrite_guard_in_place(
                        level, inputs, acct, gcctx
                    )
                except BaseException:
                    if gcctx is not None:
                        gcctx.abandon()
                    raise
                self._finalize_compaction_job(
                    level, inputs, placements, edit, acct, [], token, gcctx
                )
                return

        try:
            placements, merged_away = self._compact_stream_into(
                inputs, target, acct, edit, extra_inputs=straddlers,
                new_keys=new_keys, gcctx=gcctx,
            )
        except BaseException:
            if gcctx is not None:
                gcctx.abandon()
            raise
        self._finalize_compaction_job(
            level, inputs + straddlers + merged_away, placements, edit, acct,
            new_keys, token, gcctx,
        )

    def _rollback_guard_commit(
        self,
        target: int,
        new_keys: List[bytes],
        straddlers: List[FileMetadata],
        edit: VersionEdit,
    ) -> None:
        """Undo a tentative guard commit when the heuristic rejects the job."""
        for key in new_keys:
            self._uncommitted[target].add(key)
            self._committing.discard((target, key))
        edit.new_guards = [
            (lvl, k) for (lvl, k) in edit.new_guards if not (lvl == target and k in new_keys)
        ]
        for meta in straddlers:
            self._busy.discard(meta.number)

    # ------------------------------------------------------------------
    # Compaction building blocks
    # ------------------------------------------------------------------
    def _commit_target_guards(
        self,
        target: int,
        lo: Optional[bytes],
        hi: Optional[bytes],
        edit: VersionEdit,
    ) -> Tuple[List[bytes], List[FileMetadata]]:
        """Commit uncommitted guards of ``target`` within ``[lo, hi)``.

        Returns the newly committed keys and the *straddler* sstables —
        files an uncommitted guard would split, which the paper compacts
        into the next level instead of rewriting in place (section 3.3).
        """
        keys = sorted(
            k
            for k in self._uncommitted[target]
            if (lo is None or k >= lo) and (hi is None or k < hi)
        )
        if not keys:
            return ([], [])
        guarded = self._guarded[target]
        assert guarded is not None
        straddlers: List[FileMetadata] = []
        for key in keys:
            guard = guarded.find_guard(key)
            for meta in guard.files:
                if (
                    meta.smallest.user_key < key <= meta.largest.user_key
                    and meta.number not in self._busy
                    and meta not in straddlers
                ):
                    straddlers.append(meta)
        for meta in straddlers:
            self._busy.add(meta.number)
        for key in keys:
            self._uncommitted[target].discard(key)
            self._committing.add((target, key))
            edit.new_guards.append((target, key))
        return (keys, straddlers)

    def _estimate_last_level_merge_io(
        self, last: int, lo: Optional[bytes], hi: Optional[bytes], input_bytes: int
    ) -> int:
        guarded = self._guarded[last]
        assert guarded is not None
        opts = self.options
        total = 0
        for guard in guarded.guards():
            gl, gh = guarded.guard_range(guard)
            if lo is not None and gh is not None and gh <= lo:
                continue
            if hi is not None and gl is not None and gl >= hi:
                continue
            if guard.num_files + 1 > opts.max_sstables_per_guard:
                total += guard.size_bytes + input_bytes
        return total

    def _compact_stream_into(
        self,
        inputs: List[FileMetadata],
        target: int,
        acct: IoAccount,
        edit: VersionEdit,
        extra_inputs: Optional[List[FileMetadata]] = None,
        new_keys: Optional[List[bytes]] = None,
        gcctx=None,
    ) -> Tuple[List[Tuple[int, Optional[bytes], FileMetadata]], List[FileMetadata]]:
        """Merge ``inputs`` and partition the stream by ``target``'s guards.

        Partitioning uses the committed guards *plus* the guards this job
        is committing (``new_keys``) — the paper's "old guards and
        uncommitted guards" rule (section 3.3).  Returns ``(placements,
        merged_away)``: placements are ``(level, guard_key_or_None, meta)``
        and ``merged_away`` lists pre-existing files consumed by a forced
        merge with a full guard.

        ``extra_inputs`` (straddler sstables from the target level) are
        merged into the same stream, so their data re-lands partitioned by
        the new boundaries.
        """
        opts = self.options
        all_inputs = list(inputs) + list(extra_inputs or [])
        input_entries = sum(f.num_entries for f in all_inputs)
        iters = [
            self._get_reader(f.number, acct).iter_all(acct, cache_insert=False)
            for f in all_inputs
        ]
        # Tombstones cannot be dropped for the stream as a whole: a
        # fragment *appended* to a guard leaves that guard's existing
        # sstables in place, and one of them may hold an older version of
        # the deleted key.  Dropping is decided per segment below — only
        # when the output replaces every sstable of the target guard
        # (forced merge) or the guard is empty, with nothing below.
        is_bottom = self._is_bottom_level(target)
        snapshots = self._active_snapshots()
        base = compaction_iterator(
            merging_iterator(iters),
            drop_tombstones=False,
            snapshots=snapshots,
            on_drop=gcctx.on_drop if gcctx is not None else None,
        )
        if gcctx is not None:
            base = gcctx.rewrite(base)
        stream = _Peekable(base)
        guarded = self._guarded[target]
        assert guarded is not None
        committed = set(guarded.guard_keys)
        boundaries = sorted(committed | set(new_keys or []))
        placements: List[Tuple[int, Optional[bytes], FileMetadata]] = []
        merged_away: List[FileMetadata] = []
        out_entries = 0

        # Segment i covers [lo_i, hi_i): lo of segment 0 is the open
        # sentinel start; hi of the last segment is open-ended.
        segment_lows: List[Optional[bytes]] = [None] + list(boundaries)
        for idx, lo in enumerate(segment_lows):
            hi = boundaries[idx] if idx < len(boundaries) else None
            if not stream.has_next:
                break
            if hi is not None and stream.peek()[0].user_key >= hi:
                continue
            chunk = stream.take_until(hi)
            guard = self._existing_guard_for_segment(guarded, lo, hi, committed)
            if (
                guard is not None
                and guard.files
                and guard.num_files + 1 > opts.max_sstables_per_guard
                and not self._guard_busy(guard)
            ):
                # The guard cannot take another sstable: forced merge with
                # its existing data.  With ``max_sstables_per_guard=1``
                # every append merges, which is how FLSM degrades to LSM
                # behaviour (section 3.5); with the default it mainly
                # happens in the last level (section 3.4).
                existing = list(guard.files)
                for meta in existing:
                    self._busy.add(meta.number)
                ex_iters = [
                    self._get_reader(f.number, acct).iter_all(acct, cache_insert=False)
                    for f in existing
                ]
                merged = compaction_iterator(
                    merging_iterator(ex_iters + [chunk]),
                    drop_tombstones=is_bottom,
                    snapshots=snapshots,
                    on_drop=gcctx.on_drop if gcctx is not None else None,
                )
                # Chunk entries relocated by the outer rewrite now point at
                # the active segment (never cold), so re-wrapping cannot
                # relocate the same record twice.
                if gcctx is not None:
                    merged = gcctx.rewrite(merged)
                metas = self._emit_fragment(merged, acct)
                merged_away.extend(existing)
                input_entries += sum(f.num_entries for f in existing)
            else:
                if is_bottom and guard is not None and not guard.files:
                    oldest_snapshot = snapshots[0] if snapshots else None
                    chunk = (
                        entry
                        for entry in chunk
                        if entry[0].kind != KIND_DELETE
                        or (oldest_snapshot is not None
                            and oldest_snapshot < entry[0].sequence)
                    )
                metas = self._emit_fragment(chunk, acct)
            for meta in metas:
                placements.append((target, lo, meta))
                out_entries += meta.num_entries
        acct.charge(
            self.cpu.charge(
                "compaction_merge",
                self.cpu.merge_entry * input_entries
                + self.cpu.bloom_build_per_key * out_entries,
            )
        )
        return placements, merged_away

    def _existing_guard_for_segment(
        self,
        guarded: GuardedLevel,
        lo: Optional[bytes],
        hi: Optional[bytes],
        committed: "set[bytes]",
    ) -> Optional[Guard]:
        """The existing guard exactly matching segment ``[lo, hi)``.

        Returns None when a new (not yet applied) guard key bounds the
        segment — the files of the covering guard are being re-homed by
        the same job, so a forced merge cannot safely use them.
        """
        if lo is not None and lo not in committed:
            return None
        guard = guarded.find_guard(lo) if lo is not None else guarded.sentinel
        current_lo, current_hi = guarded.guard_range(guard)
        if current_lo != lo or current_hi != hi:
            return None
        return guard

    def _rewrite_guard_in_place(
        self, level: int, inputs: List[FileMetadata], acct: IoAccount, gcctx=None
    ) -> List[Tuple[int, Optional[bytes], FileMetadata]]:
        """Merge a guard's sstables into one table at the same level."""
        iters = [
            self._get_reader(f.number, acct).iter_all(acct, cache_insert=False)
            for f in inputs
        ]
        drop = self._is_bottom_level(level)
        merged = compaction_iterator(
            merging_iterator(iters),
            drop_tombstones=drop,
            snapshots=self._active_snapshots(),
            on_drop=gcctx.on_drop if gcctx is not None else None,
        )
        if gcctx is not None:
            merged = gcctx.rewrite(merged)
        metas = self._emit_fragment(merged, acct)
        entries = sum(f.num_entries for f in inputs)
        acct.charge(
            self.cpu.charge(
                "compaction_merge",
                self.cpu.merge_entry * entries
                + self.cpu.bloom_build_per_key * sum(m.num_entries for m in metas),
            )
        )
        guarded = self._guarded[level]
        assert guarded is not None
        placements = []
        for meta in metas:
            guard = guarded.find_guard(meta.smallest.user_key)
            placements.append((level, guard.key, meta))
        return placements

    def _emit_fragment(self, entries: Iterator[Entry], acct: IoAccount) -> List[FileMetadata]:
        """Write one guard fragment (a single sstable) from a stream."""
        opts = self.options
        builder = SSTableBuilder(opts.block_bytes, opts.bloom_bits_per_key)
        for key, value in entries:
            builder.add(key, value)
        if builder.num_entries == 0:
            return []
        blob, props, _ = builder.finish()
        number = self._alloc_file_number()
        name = self._sst_name(number)
        self.storage.create(name, charge_factor=opts.compression_ratio)
        if opts.compression_ratio < 1.0:
            acct.charge(
                self.cpu.charge("compress", self.cpu.compress_per_kb * len(blob) / 1024)
            )
        self.storage.append(name, blob, acct)
        self.storage.sync(name, acct)
        return [
            FileMetadata(
                number=number,
                smallest=props.smallest,
                largest=props.largest,
                file_size=props.file_size,
                num_entries=props.num_entries,
            )
        ]

    def _is_bottom_level(self, level: int) -> bool:
        """No live data strictly below ``level`` (tombstones can be GC'd)."""
        for lvl in range(level + 1, self.options.num_levels):
            guarded = self._guarded[lvl]
            assert guarded is not None
            if guarded.size_bytes > 0:
                return False
        return True

    # ------------------------------------------------------------------
    def _finalize_compaction_job(
        self,
        source_level: int,
        consumed: List[FileMetadata],
        placements: List[Tuple[int, Optional[bytes], FileMetadata]],
        edit: VersionEdit,
        acct: IoAccount,
        new_keys: List[bytes],
        claim_token: Optional[int] = None,
        gcctx=None,
    ) -> None:
        """Record the edit and submit the job for deferred application."""
        consumed_levels = {
            meta.number: self._level_of_file(meta.number) for meta in consumed
        }
        for meta in consumed:
            level = consumed_levels[meta.number]
            edit.delete_file(level if level is not None else source_level, meta.number)
        for level, guard_key, meta in placements:
            if guard_key is None:
                edit.add_file(level, meta, GUARD_SENTINEL)
            else:
                edit.add_file(level, meta, GUARD_KEY, guard_key)
        edit.next_file_number = self._next_file_number
        bytes_written = sum(m.file_size for _, _, m in placements)
        trc = self.tracer
        parent = trc.current() if trc is not None else None
        job_ref: List = []

        def apply() -> None:
            # MANIFEST first: whether the edit became durable decides
            # whether the consumed inputs may be deleted (a non-durable
            # edit means crash recovery replays the old version, which
            # still references them — deletion then waits for resume()).
            manifest_acct = self.storage.background_account(self.prefix + "manifest")
            self._vlog_commit(gcctx, edit)
            durable = self._append_manifest(edit, manifest_acct)
            self._vlog_retire(gcctx, durable)
            for key in new_keys:
                level = [lvl for lvl, k in edit.new_guards if k == key][0]
                self._add_guard_live(level, key)
                self._committing.discard((level, key))
            for meta in consumed:
                self._detach_file(meta)
                self._busy.discard(meta.number)
                self._retire_or_defer(meta.number, durable)
            for level, guard_key, meta in placements:
                guarded = self._guarded[level]
                assert guarded is not None
                guarded.add_file(meta)
            self._release_claims(claim_token)
            self._stats.compactions += 1
            self._stats.compaction_bytes_written += bytes_written
            if trc is not None and job_ref:
                job = job_ref[0]
                span = trc.start_span(
                    "compaction.guard",
                    kind="background",
                    parent=parent,
                    start=job.start,
                    level=source_level,
                    guard_lo=_key_label(
                        min(f.smallest.user_key for f in consumed)
                        if consumed
                        else None
                    ),
                    guard_hi=_key_label(
                        max(f.largest.user_key for f in consumed)
                        if consumed
                        else None
                    ),
                    files_in=len(consumed),
                    files_out=len(placements),
                    bytes_in=sum(f.file_size for f in consumed),
                    bytes_out=bytes_written,
                    new_guards=len(new_keys),
                    conflict_wait=job.queue_wait,
                )
                span.end(at=job.completion)
            self._schedule_compactions()

        # GC relocation IO lives on its own ledger account; the job's
        # duration covers both so the timeline matches the pre-split one.
        job_seconds = acct.seconds + (gcctx.seconds if gcctx is not None else 0.0)
        self._compaction_seconds.record(job_seconds)
        bytes_in = sum(f.file_size for f in consumed)
        start_at = self._compaction_start_time(bytes_in + bytes_written)
        job_ref.append(
            self.executor.submit("compaction", job_seconds, apply, at=start_at)
        )

    def _add_guard_live(self, level: int, key: bytes) -> None:
        guarded = self._guarded[level]
        assert guarded is not None
        if guarded.has_guard(key):
            return
        covering = guarded.find_guard(key)
        moved = [f for f in covering.files if f.smallest.user_key >= key]
        guarded.add_guard(key)
        new_guard = guarded.find_guard(key)
        for meta in moved:
            covering.remove_file(meta.number)
            new_guard.files.append(meta)

    def _detach_file(self, meta: FileMetadata) -> None:
        if meta in self._level0:
            self._level0.remove(meta)
            return
        for guarded in self._guarded[1:]:
            assert guarded is not None
            for guard in guarded.guards():
                if any(f.number == meta.number for f in guard.files):
                    guard.remove_file(meta.number)
                    return

    def _level_of_file(self, number: int) -> Optional[int]:
        if any(f.number == number for f in self._level0):
            return 0
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            if any(f.number == number for f in guarded.all_files()):
                return level
        return None

    # ==================================================================
    # Guard deletion (paper section 3.3)
    # ==================================================================
    def request_guard_deletion(self, key: bytes) -> None:
        """Asynchronously delete guard ``key`` at every level holding it."""
        self._pending_guard_deletions.add(key)

    def _apply_guard_deletions(self) -> None:
        keys, self._pending_guard_deletions = self._pending_guard_deletions, set()
        edit = VersionEdit()
        changed = False
        # Sorted: the iteration order lands in the MANIFEST's
        # deleted_guards list, which must not depend on set hashing.
        for key in sorted(keys):
            for level in range(1, self.options.num_levels):
                guarded = self._guarded[level]
                assert guarded is not None
                if not guarded.has_guard(key):
                    continue
                guard = guarded.remove_guard(key)
                for meta in guard.files:
                    guarded.add_file(meta)  # absorbed by the left neighbour
                edit.deleted_guards.append((level, key))
                changed = True
            self._uncommitted_discard(key)
        if changed:
            acct = self.storage.background_account(self.prefix + "manifest")
            # Metadata-only; on failure the edit queues for resume().
            self._append_manifest(edit, acct)

    def _uncommitted_discard(self, key: bytes) -> None:
        for pending in self._uncommitted:
            pending.discard(key)

    # ==================================================================
    # Chapter 7 extensions: adaptive guards and empty-guard cleanup.
    # The paper lists both as future work; they are implemented here as
    # explicit maintenance operations.
    # ==================================================================
    def force_full_compaction(self) -> None:
        """Push every byte to the deepest populated position.

        The equivalent of LevelDB's ``CompactRange``: flush, drain Level
        0, then compact every non-empty guard level by level; bottom-level
        rewrites garbage-collect tombstones, so a fully deleted range
        leaves only empty guards behind.
        """
        self.flush_memtable()
        self.executor.wait_all()
        if self._level0:
            self._schedule_compactions()
            self.executor.wait_all()
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            for guard in list(guarded.guards()):
                if guard.files and not self._guard_busy(guard):
                    if self._claims_available(self._guard_claims(level, guard)):
                        if not self._submit_guard_protected(level, guard):
                            return
                        self.executor.wait_all()
            self.executor.wait_all()

    def rebalance_guards(self, max_guard_bytes: Optional[int] = None) -> int:
        """Split skewed guards by inserting synthetic guard keys.

        Static probabilistic selection can leave one guard holding far
        more data than its peers (paper section 7, "Making Guards dynamic
        and adaptive").  For every guard larger than ``max_guard_bytes``
        (default: 4x the level's fair share), a midpoint key is selected
        as a new uncommitted guard for that level and all deeper levels —
        FLSM explicitly allows guard keys that were never inserted
        (section 3.2).  Takes effect at the next compaction, like any
        guard.  Returns the number of new guard keys selected.
        """
        added = 0
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            level_bytes = guarded.size_bytes
            if not level_bytes:
                continue
            if max_guard_bytes is not None:
                threshold = max_guard_bytes
            else:
                # Skewed = one guard holding several compactions' worth
                # of data, which makes its reads and seeks slow.
                threshold = 4 * self.options.target_file_bytes
            for guard in list(guarded.guards()):
                if guard.size_bytes <= threshold or guard.num_files < 2:
                    continue
                midpoint = self._guard_midpoint(guard)
                if midpoint is None:
                    continue
                for lvl in range(level, self.options.num_levels):
                    lvl_guarded = self._guarded[lvl]
                    assert lvl_guarded is not None
                    if not lvl_guarded.has_guard(midpoint):
                        self._uncommitted[lvl].add(midpoint)
                added += 1
        return added

    def _guard_midpoint(self, guard: Guard) -> Optional[bytes]:
        """A key splitting the guard's data roughly in half.

        Uses the median data-block boundary of the guard's largest
        sstable — its index is already resident in the table cache, so
        this costs no data IO.
        """
        largest = max(guard.files, key=lambda f: f.file_size)
        acct = self.storage.foreground_account(self.prefix + "maintenance")
        reader = self._get_reader(largest.number, acct)
        boundaries = reader.index_keys
        if len(boundaries) < 2:
            return None
        mid = boundaries[len(boundaries) // 2].user_key
        if mid <= largest.smallest.user_key:
            return None
        return mid

    def collect_empty_guards(self) -> int:
        """Request deletion of guards that are empty at every level.

        Empty guards are harmless for performance (Figure 5.4) but
        accumulate metadata under time-series workloads; this trims them
        via the ordinary asynchronous guard-deletion path (section 3.3),
        which is metadata-only.  Returns the number of guards scheduled.
        """
        all_keys: Set[bytes] = set()
        occupied: Set[bytes] = set()
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            all_keys.update(guarded.guard_keys)
            occupied.update(
                g.key for g in guarded.guards() if g.key is not None and g.files
            )
        doomed = all_keys - occupied
        for key in doomed:
            self.request_guard_deletion(key)
        return len(doomed)

    # ==================================================================
    # Recovery plumbing
    # ==================================================================
    def _recover_file(
        self, level: int, meta: FileMetadata, marker: int, guard_key: bytes
    ) -> None:
        if level == 0:
            self._level0.insert(0, meta)
            return
        guarded = self._guarded[level]
        assert guarded is not None
        guarded.add_file(meta)

    def _recover_drop_file(self, level: int, number: int) -> None:
        self._level0 = [f for f in self._level0 if f.number != number]
        for guarded in self._guarded[1:]:
            assert guarded is not None
            for guard in guarded.guards():
                guard.remove_file(number)

    def _recover_guard(self, level: int, key: bytes) -> None:
        self._add_guard_live(level, key)
        self._uncommitted[level].discard(key)

    def _recover_guard_deletion(self, level: int, key: bytes) -> None:
        guarded = self._guarded[level]
        assert guarded is not None
        if guarded.has_guard(key):
            guard = guarded.remove_guard(key)
            for meta in guard.files:
                guarded.add_file(meta)

    def _post_recover(self) -> None:
        """Repair the skip-list property after a restart.

        Uncommitted guards live only in memory (paper section 3.3), so a
        crash can leave a guard committed at level *i* with its deeper
        counterparts lost.  Guard keys qualify for every deeper level by
        construction, so re-seeding them into the uncommitted sets
        restores the invariant without any IO.
        """
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            for key in guarded.guard_keys:
                for deeper in range(level + 1, self.options.num_levels):
                    deeper_guarded = self._guarded[deeper]
                    assert deeper_guarded is not None
                    if not deeper_guarded.has_guard(key):
                        self._uncommitted[deeper].add(key)

    # ==================================================================
    # Diagnostics
    # ==================================================================
    def layout(self) -> str:
        """Figure 3.1 style dump of guards and sstables per level."""
        lines = [
            "Level 0 (no guards): "
            + " ".join(
                f"[{f.smallest.user_key!r}..{f.largest.user_key!r}]" for f in self._level0
            )
        ]
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            if guarded.size_bytes == 0 and not len(guarded):
                continue
            parts = []
            for guard in guarded.guards():
                label = "sentinel" if guard.is_sentinel else repr(guard.key)
                tables = " ".join(
                    f"[{f.smallest.user_key!r}..{f.largest.user_key!r}]"
                    for f in guard.files
                )
                parts.append(f"Guard {label}: {tables or '(empty)'}")
            lines.append(f"Level {level}: " + " | ".join(parts))
        return "\n".join(lines)

    def check_invariants(self) -> None:
        numbers = self.sstable_file_numbers()
        assert len(numbers) == len(set(numbers)), "duplicate file numbers"
        for level in range(1, self.options.num_levels):
            guarded = self._guarded[level]
            assert guarded is not None
            guarded.check_invariants()
            # Skip-list property: a committed guard at level i must be
            # present (committed or pending) at every deeper level.
            for key in guarded.guard_keys:
                for deeper in range(level + 1, self.options.num_levels):
                    deeper_guarded = self._guarded[deeper]
                    assert deeper_guarded is not None
                    assert (
                        deeper_guarded.has_guard(key)
                        or key in self._uncommitted[deeper]
                        or (deeper, key) in self._committing
                    ), f"guard {key!r} at level {level} missing from level {deeper}"
        for number in numbers:
            if number not in self._busy:
                assert self.storage.exists(self._sst_name(number)), (
                    f"live sstable missing on storage: {number}"
                )

"""Guards: the skip-list-inspired partitioning of FLSM levels.

A guard with key *K* at level *i* owns every sstable whose keys fall in
``[K, K_next)`` where ``K_next`` is the next guard key of that level; keys
below the first guard belong to the *sentinel* guard (paper section 3.1).
Guards of level *i* are a subset of the guards of level *i+1* — the
skip-list property — which follows automatically from the selection rule:

    a key guards level *i* iff its MurmurHash has at least
    ``top_level_bits - (i-1) * bit_decrement`` consecutive set
    least-significant bits (paper section 4.4).

Within a level, guard ranges are disjoint; the sstables *inside* one guard
may overlap freely — that is what lets compaction append fragments instead
of rewriting, and it is the invariant difference between FLSM and LSM.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.util.murmur import murmur3_32
from repro.version.files import FileMetadata


def trailing_set_bits(value: int) -> int:
    """Number of consecutive set least-significant bits of ``value``."""
    count = 0
    while value & 1:
        count += 1
        value >>= 1
    return count


class GuardPicker:
    """Decides, per inserted key, the shallowest level it guards (if any)."""

    def __init__(self, top_level_bits: int, bit_decrement: int, num_levels: int) -> None:
        if top_level_bits < 1 or bit_decrement < 0:
            raise ValueError("bad guard picker parameters")
        self.top_level_bits = top_level_bits
        self.bit_decrement = bit_decrement
        self.num_levels = num_levels

    def required_bits(self, level: int) -> int:
        """Set LSBs required to guard ``level`` (levels are 1-based)."""
        return max(1, self.top_level_bits - (level - 1) * self.bit_decrement)

    def guard_level(self, key: bytes) -> Optional[int]:
        """Shallowest level ``key`` guards, or None.

        By construction a guard at level *i* is a guard at every level
        > *i*, because ``required_bits`` decreases with depth.
        """
        bits = trailing_set_bits(murmur3_32(key))
        if bits >= self.required_bits(1):
            return 1
        # required_bits is monotonically decreasing: binary search not
        # needed, the level count is small.
        for level in range(2, self.num_levels):
            if bits >= self.required_bits(level):
                return level
        return None


@dataclass
class Guard:
    """One guard: its key and the sstables attached to it.

    ``key`` is None for the sentinel guard.  ``files`` is kept in append
    order: data only ever arrives by appending the output of a compaction
    of a *whole* upper guard, so later files hold newer versions.
    """

    key: Optional[bytes]
    files: List[FileMetadata] = field(default_factory=list)

    @property
    def is_sentinel(self) -> bool:
        return self.key is None

    @property
    def num_files(self) -> int:
        return len(self.files)

    @property
    def size_bytes(self) -> int:
        return sum(f.file_size for f in self.files)

    @property
    def num_entries(self) -> int:
        return sum(f.num_entries for f in self.files)

    def remove_file(self, number: int) -> None:
        self.files = [f for f in self.files if f.number != number]


class GuardedLevel:
    """The guards of one FLSM level, ordered by guard key."""

    def __init__(self, level: int) -> None:
        self.level = level
        self.sentinel = Guard(None)
        self._keys: List[bytes] = []
        self._guards: Dict[bytes, Guard] = {}

    # ------------------------------------------------------------------
    @property
    def guard_keys(self) -> List[bytes]:
        return list(self._keys)

    def __len__(self) -> int:
        """Number of non-sentinel guards."""
        return len(self._keys)

    def guards(self) -> Iterator[Guard]:
        """All guards in key order, sentinel first."""
        yield self.sentinel
        for key in self._keys:
            yield self._guards[key]

    def non_empty_guards(self) -> Iterator[Guard]:
        return (g for g in self.guards() if g.files)

    # ------------------------------------------------------------------
    def add_guard(self, key: bytes) -> bool:
        """Commit a guard key; returns False if already present."""
        if key in self._guards:
            return False
        insort(self._keys, key)
        self._guards[key] = Guard(key)
        return True

    def has_guard(self, key: bytes) -> bool:
        return key in self._guards

    def remove_guard(self, key: bytes) -> Guard:
        """Detach and return a guard (its files must be re-homed by the
        caller — see guard deletion, paper section 3.3)."""
        guard = self._guards.pop(key)
        self._keys.remove(key)
        return guard

    # ------------------------------------------------------------------
    def find_guard(self, user_key: bytes) -> Guard:
        """The unique guard whose range covers ``user_key``."""
        idx = bisect_right(self._keys, user_key)
        if idx == 0:
            return self.sentinel
        return self._guards[self._keys[idx - 1]]

    def guard_index(self, user_key: bytes) -> int:
        """Index into :meth:`guards` order (0 = sentinel)."""
        return bisect_right(self._keys, user_key)

    def guards_from(self, user_key: bytes) -> Iterator[Guard]:
        """Guards covering ``user_key`` onward, in key order."""
        idx = bisect_right(self._keys, user_key)
        if idx == 0:
            yield self.sentinel
            start = 0
        else:
            start = idx - 1
        for key in self._keys[start:]:
            yield self._guards[key]

    def guard_range(self, guard: Guard) -> "tuple[Optional[bytes], Optional[bytes]]":
        """Key range ``[lo, hi)`` owned by ``guard`` (None = open end)."""
        if guard.is_sentinel:
            hi = self._keys[0] if self._keys else None
            return (None, hi)
        idx = self._keys.index(guard.key)  # type: ignore[arg-type]
        hi = self._keys[idx + 1] if idx + 1 < len(self._keys) else None
        return (guard.key, hi)

    # ------------------------------------------------------------------
    def add_file(self, meta: FileMetadata) -> None:
        """Attach a file to the guard covering its smallest key."""
        self.find_guard(meta.smallest.user_key).files.append(meta)

    def all_files(self) -> Iterator[FileMetadata]:
        for guard in self.guards():
            yield from guard.files

    @property
    def size_bytes(self) -> int:
        return sum(g.size_bytes for g in self.guards())

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        assert self._keys == sorted(self._keys), "guard keys out of order"
        assert len(set(self._keys)) == len(self._keys), "duplicate guard keys"
        for guard in self.guards():
            lo, hi = self.guard_range(guard)
            for meta in guard.files:
                if lo is not None:
                    assert meta.smallest.user_key >= lo, (
                        f"file {meta.number} below guard {lo!r} at level {self.level}"
                    )
                if hi is not None:
                    assert meta.largest.user_key < hi, (
                        f"file {meta.number} beyond guard range {hi!r} "
                        f"at level {self.level}"
                    )

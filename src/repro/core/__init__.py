"""The paper's contribution: FLSM guards and the PebblesDB engine.

* :mod:`repro.core.guards` — guard selection (MurmurHash LSB scheme, paper
  section 4.4), the per-level guard structure, and its invariants.
* :mod:`repro.core.pebbles` — the PebblesDB store: FLSM partition-append
  compaction (section 3.4) plus the section 4 optimizations (sstable bloom
  filters, seek-based and aggressive compaction, parallel seeks).
"""

from repro.core.guards import Guard, GuardedLevel, GuardPicker
from repro.core.pebbles import PebblesDBStore

__all__ = ["Guard", "GuardedLevel", "GuardPicker", "PebblesDBStore"]

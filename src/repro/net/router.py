"""Boundary-key shard routing — FLSM guards, one level up.

PebblesDB partitions each level into guards: boundary keys that divide
the key space into ranges compacted independently.  The serving layer
applies the same idea across *processes*: ``N`` shards are separated by
``N - 1`` boundary keys, shard ``i`` owning ``[boundary[i-1],
boundary[i])`` (shard 0 owns everything below the first boundary, the
last shard everything from the last boundary up).  Single-key ops route
by bisection; scans and write batches split into per-shard pieces whose
results concatenate back in key order — range partitioning keeps shards
*sorted relative to each other*, so a cross-shard scan needs no merge
beyond concatenation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidArgumentError

#: One write-batch op: (kind, key, value).
BatchOp = Tuple[int, bytes, bytes]


class ShardRouter:
    """Maps keys and key ranges onto shard indices."""

    def __init__(self, boundaries: Sequence[bytes]) -> None:
        bounds = [bytes(b) for b in boundaries]
        if any(not b for b in bounds):
            raise InvalidArgumentError("shard boundaries must be non-empty keys")
        if bounds != sorted(set(bounds)):
            raise InvalidArgumentError("shard boundaries must be strictly ascending")
        self.boundaries: List[bytes] = bounds

    @property
    def num_shards(self) -> int:
        return len(self.boundaries) + 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(cls) -> "ShardRouter":
        """The trivial one-shard router."""
        return cls([])

    @classmethod
    def from_samples(cls, keys: Iterable[bytes], num_shards: int) -> "ShardRouter":
        """Quantile boundaries from sampled keys (guard-style selection).

        Like FLSM guard selection, boundaries come *from the observed key
        distribution* rather than from assumptions about the key space:
        the samples are sorted and split at ``num_shards`` equal-count
        quantiles.  Duplicate quantile keys collapse, so a badly skewed
        sample may yield fewer shards than asked for.
        """
        if num_shards < 1:
            raise InvalidArgumentError("need at least one shard")
        ordered = sorted(set(bytes(k) for k in keys))
        if num_shards == 1 or len(ordered) < num_shards:
            return cls.single()
        step = len(ordered) / num_shards
        bounds = []
        for i in range(1, num_shards):
            key = ordered[int(i * step)]
            if not bounds or key > bounds[-1]:
                bounds.append(key)
        return cls(bounds)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, key: bytes) -> int:
        """The shard owning ``key``."""
        return bisect_right(self.boundaries, key)

    def shard_range(self, shard: int) -> Tuple[Optional[bytes], Optional[bytes]]:
        """``[lo, hi)`` owned by ``shard`` (None = unbounded side)."""
        if not 0 <= shard < self.num_shards:
            raise InvalidArgumentError(f"no shard {shard} (have {self.num_shards})")
        lo = self.boundaries[shard - 1] if shard > 0 else None
        hi = self.boundaries[shard] if shard < len(self.boundaries) else None
        return lo, hi

    def split_batch(self, ops: Sequence[BatchOp]) -> Dict[int, List[BatchOp]]:
        """Partition a write batch by owning shard (op order preserved)."""
        per_shard: Dict[int, List[BatchOp]] = {}
        for op in ops:
            per_shard.setdefault(self.shard_for(op[1]), []).append(op)
        return per_shard

    def split_range(
        self, lo: bytes, hi: Optional[bytes]
    ) -> List[Tuple[int, bytes, Optional[bytes]]]:
        """Split ``[lo, hi)`` into per-shard sub-ranges, ascending.

        ``hi`` is *exclusive* (None = unbounded above), matching the wire
        protocol's SCAN semantics and the shard boundaries themselves.
        Each entry is ``(shard, sub_lo, sub_hi)``; concatenating
        per-shard scan results in list order yields globally sorted
        output, because shard key ranges are themselves ordered.
        """
        if hi is not None and hi <= lo:
            return []
        first = self.shard_for(lo)
        # hi is exclusive: the shard owning the last *included* key is the
        # one just below hi, which shard_for almost gives us — except when
        # hi sits exactly on a boundary, where the scan ends one shard down.
        if hi is None:
            last = self.num_shards - 1
        else:
            last = self.shard_for(hi)
            if last > 0 and self.shard_range(last)[0] == hi:
                last -= 1
        pieces: List[Tuple[int, bytes, Optional[bytes]]] = []
        for shard in range(first, last + 1):
            shard_lo, shard_hi = self.shard_range(shard)
            sub_lo = lo if shard == first else (shard_lo if shard_lo is not None else lo)
            sub_hi = hi if shard == last else shard_hi
            pieces.append((shard, sub_lo, sub_hi))
        return pieces

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(shards={self.num_shards})"

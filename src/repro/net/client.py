"""Cluster client: pooling, pipelining, routing, retry with dedup.

:class:`ClusterClient` is the async client.  It keeps a small pool of
connections, pipelines concurrent requests over them (responses are
matched back by ``request_id``, so many calls can be in flight on one
connection), routes every operation through the
:class:`~repro.net.router.ShardRouter` learned from the server's HELLO
response, and splits scans and write batches into per-shard pieces whose
results are merged back transparently.

Failures map onto the PR 2 fault taxonomy one layer up:

* connection loss or a damaged frame → :class:`TransientNetError`; the
  client reconnects, backs off exponentially, and retries the *same*
  request id, which the server deduplicates so retried writes are
  applied exactly once;
* retries exhausted → :class:`ServerUnavailableError`;
* a ``DEGRADED`` response → :class:`ShardDegradedError` immediately (the
  shard is read-only until an operator resumes it; retrying cannot help).

:class:`BlockingClusterClient` wraps the async client (plus an in-process
loopback server) behind the synchronous :class:`KeyValueStore`-style
interface the workload drivers expect, so db_bench and YCSB can run
unchanged against a sharded cluster.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidArgumentError
from repro.net.errors import (
    FrameError,
    NetError,
    RemoteError,
    RetriesExhaustedError,
    ServerUnavailableError,
    ShardDegradedError,
    TransientNetError,
)
from repro.net.protocol import (
    OP_NAMES,
    FrameDecoder,
    Op,
    Request,
    Response,
    Status,
    decode_payload,
    encode_frame,
)
from repro.net.router import BatchOp, ShardRouter

#: ``connect(index) -> endpoint`` factory; index counts connections ever
#: opened (reconnects included), so fault hooks can target specific ones.
ConnectFn = Callable[[int], Awaitable[object]]


@dataclass
class ClientStats:
    """Client-side counters (retry behaviour is observable in tests)."""

    requests: int = 0
    retries: int = 0
    connections_opened: int = 0
    transient_errors: int = 0
    #: OVERLOADED responses honored: admission-control retries where the
    #: backoff was raised to at least the server's retry-after hint.
    overload_backoffs: int = 0


@dataclass
class ClusterSnapshot:
    """A consistent read view pinned on every shard (one token each)."""

    tokens: List[int]

    def token_for(self, shard: int) -> int:
        return self.tokens[shard]


class Connection:
    """One pipelined connection: a writer side plus a response reader task."""

    def __init__(self, endpoint) -> None:
        self._endpoint = endpoint
        self._pending: Dict[int, asyncio.Future] = {}
        self._dead = False
        self._reader = asyncio.ensure_future(self._read_loop())

    @property
    def is_alive(self) -> bool:
        return not self._dead

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await self._endpoint.read(65536)
                if not chunk:
                    raise TransientNetError("connection closed by peer")
                decoder.feed(chunk)
                while True:
                    payload = decoder.next_frame()
                    if payload is None:
                        break
                    response = decode_payload(payload)
                    if not isinstance(response, Response):
                        raise FrameError("server sent a request payload")
                    future = self._pending.pop(response.request_id, None)
                    if future is not None and not future.done():
                        future.set_result(response)
        except asyncio.CancelledError:
            self._fail(TransientNetError("connection closed"))
            raise
        except NetError as exc:
            self._fail(exc)
        except Exception as exc:  # pragma: no cover - defensive
            self._fail(TransientNetError(f"reader failed: {exc}"))

    def _fail(self, exc: NetError) -> None:
        """Kill the connection; every in-flight call fails (and retries)."""
        self._dead = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        self._endpoint.close()

    async def call(self, request: Request) -> Response:
        """Send one request and await its matched response (pipelined)."""
        if self._dead:
            raise TransientNetError("connection is dead")
        future = asyncio.get_running_loop().create_future()
        self._pending[request.request_id] = future
        try:
            self._endpoint.write(encode_frame(request.encode()))
            await self._endpoint.drain()
        except NetError as exc:
            self._pending.pop(request.request_id, None)
            self._fail(exc)
            raise TransientNetError(f"send failed: {exc}") from exc
        return await future

    async def close(self) -> None:
        self._reader.cancel()
        await asyncio.gather(self._reader, return_exceptions=True)
        self._endpoint.close()


class ClusterClient:
    """Async client for one serving process.  Build via :meth:`open`."""

    def __init__(
        self,
        connect: ConnectFn,
        *,
        pool_size: int = 2,
        max_retries: int = 10,
        backoff_base: float = 0.01,
        backoff_max: float = 0.5,
        retry_budget: Optional[float] = None,
        retry_jitter: bool = True,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
        endpoint_wrap: Optional[Callable[[object, int], object]] = None,
    ) -> None:
        if pool_size < 1:
            raise InvalidArgumentError("pool_size must be >= 1")
        self._connect = connect
        self._pool_size = pool_size
        #: The default attempt cap is sized so the cumulative backoff
        #: (~2s expected with jitter) rides through a supervised worker
        #: restart in the process serving mode, not just a dropped
        #: connection.
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_max = backoff_max
        #: Total backoff seconds one call may spend before it raises
        #: :class:`RetriesExhaustedError` (None = attempt cap only).
        self._retry_budget = retry_budget
        #: Capped *deterministic* jitter: the delay is scaled into
        #: [0.5, 1.0) by a pure function of (request_id, attempt), so
        #: retry storms decorrelate without sacrificing reproducibility.
        self._retry_jitter = retry_jitter
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._endpoint_wrap = endpoint_wrap
        self._pool: List[Optional[Connection]] = [None] * pool_size
        #: Created lazily inside the running loop (Python 3.9's Lock binds
        #: an event loop at construction time).
        self._slot_locks: Optional[List[asyncio.Lock]] = None
        self._next_slot = 0
        self._next_request_id = 1
        self.client_id = 0
        self.router: Optional[ShardRouter] = None
        self.stats = ClientStats()
        #: Set via :meth:`enable_tracing`; every call then opens a client
        #: span whose context travels to the server in the request frame.
        self.tracer = None
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    async def open(cls, connect: ConnectFn, **kwargs) -> "ClusterClient":
        """Connect, HELLO, and learn the shard map."""
        client = cls(connect, **kwargs)
        await client._connection(0)  # the HELLO fills in router + client_id
        return client

    @classmethod
    async def open_loopback(cls, server, **kwargs) -> "ClusterClient":
        """Client served in-process over deterministic loopback pipes."""

        async def connect(_index: int):
            return server.connect_loopback()

        return await cls.open(connect, **kwargs)

    @classmethod
    async def open_tcp(cls, host: str, port: int, **kwargs) -> "ClusterClient":
        """Client over real asyncio TCP streams."""
        from repro.net.transport import StreamEndpoint

        async def connect(_index: int):
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except (ConnectionError, OSError) as exc:
                raise TransientNetError(f"connect failed: {exc}") from exc
            return StreamEndpoint(reader, writer)

        return await cls.open(connect, **kwargs)

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    async def _connection(self, slot: Optional[int] = None) -> Connection:
        if self._closed:
            raise TransientNetError("client is closed")
        if slot is None:
            slot = self._next_slot
            self._next_slot = (self._next_slot + 1) % self._pool_size
        conn = self._pool[slot]
        if conn is not None and conn.is_alive:
            return conn
        if self._slot_locks is None:
            self._slot_locks = [asyncio.Lock() for _ in range(self._pool_size)]
        async with self._slot_locks[slot]:
            # Another caller may have reconnected this slot while we
            # waited for the lock; only one connection per slot at a time.
            conn = self._pool[slot]
            if conn is not None and conn.is_alive:
                return conn
            endpoint = await self._connect(self.stats.connections_opened)
            if self._endpoint_wrap is not None:
                endpoint = self._endpoint_wrap(
                    endpoint, self.stats.connections_opened
                )
            self.stats.connections_opened += 1
            conn = Connection(endpoint)
            self._pool[slot] = conn
            hello = Request(
                op=Op.HELLO, request_id=self._alloc_id(), client_id=self.client_id
            )
            try:
                response = await conn.call(hello)
            except NetError:
                self._pool[slot] = None
                await conn.close()
                raise
            self.client_id = response.client_id
            if self.router is None:
                self.router = ShardRouter(response.boundaries)
            return conn

    def _alloc_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    # ------------------------------------------------------------------
    # Request execution with retry/backoff
    # ------------------------------------------------------------------
    def enable_tracing(
        self, sink, *, clock=None, component: str = "client", seed: int = 0
    ):
        """Open a client span per call; its context rides in the frame."""
        from repro.obs.trace import Tracer

        self.tracer = Tracer(sink, clock=clock, component=component, seed=seed)
        return self.tracer

    async def _call(self, request: Request) -> Response:
        """Issue ``request``, reconnecting and retrying transient failures.

        The same request id is re-sent on every attempt: reads are
        naturally idempotent and the server deduplicates writes, so a
        request whose response was lost is never applied twice.
        """
        self.stats.requests += 1
        trc = self.tracer
        if trc is None:
            return await self._call_with_retry(request, None)
        span = trc.start_span(
            f"client.{OP_NAMES.get(request.op, str(request.op))}",
            kind="client",
            shard=request.shard,
        )
        request.trace = f"{span.trace_id}/{span.span_id}"
        with span:
            response = await self._call_with_retry(request, span)
            span.set(status=Status.NAMES.get(response.status, str(response.status)))
            return response

    def _backoff_delay(self, request_id: int, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        The jitter multiplier lives in [0.5, 1.0) and is a pure function
        of (request_id, attempt) — a Knuth-style multiplicative hash —
        so two clients retrying different requests decorrelate while a
        same-seed rerun backs off identically.
        """
        delay = min(self._backoff_base * (2 ** attempt), self._backoff_max)
        if self._retry_jitter:
            h = (request_id * 2654435761 + attempt * 40503 + 97) & 0xFFFFFFFF
            delay *= 0.5 + (h / 2.0 ** 32) * 0.5
        return delay

    async def _retry_backoff(
        self,
        request: Request,
        span,
        attempt: int,
        spent: float,
        error: str,
        min_delay: float = 0.0,
    ) -> float:
        """Account one transient failure; sleep or raise when exhausted.

        Returns the updated backoff-seconds total.  Raises
        :class:`RetriesExhaustedError` (a :class:`ServerUnavailableError`)
        when the attempt cap or the backoff budget is spent — bounded
        behaviour against a shard that stays dead, instead of retrying
        forever.  ``min_delay`` floors the computed backoff (an
        OVERLOADED retry-after hint); the raised delay still counts
        against the same retry budget.
        """
        self.stats.transient_errors += 1
        delay = max(self._backoff_delay(request.request_id, attempt), min_delay)
        budget = self._retry_budget
        if attempt >= self._max_retries or (
            budget is not None and spent + delay > budget
        ):
            raise RetriesExhaustedError(
                f"request {request.request_id} failed after {attempt + 1} "
                f"attempts ({spent:.3f}s backoff): {error}",
                attempts=attempt + 1,
                backoff_spent=spent,
            )
        self.stats.retries += 1
        if span is not None:
            span.event("retry", attempt=attempt + 1, error=error)
        await self._sleep(delay)
        return spent + delay

    async def _call_with_retry(
        self, request: Request, span
    ) -> Response:
        attempt = 0
        spent = 0.0
        while True:
            try:
                conn = await self._connection()
                response = await conn.call(request)
            except (TransientNetError, FrameError) as exc:
                spent = await self._retry_backoff(
                    request, span, attempt, spent, type(exc).__name__
                )
                attempt += 1
                continue
            if response.status == Status.UNAVAILABLE:
                # The shard's worker process is down.  Transient: the
                # supervisor restarts it (replaying the ship log), so
                # retry like a dropped connection rather than failing
                # the call outright.
                spent = await self._retry_backoff(
                    request, span, attempt, spent, "UNAVAILABLE"
                )
                attempt += 1
                continue
            if response.status == Status.OVERLOADED:
                # Admission control shed this write.  Honor the server's
                # retry-after hint (flooring the normal backoff) inside
                # the same retry budget; the retried request keeps its
                # request id, so the eventual apply is still
                # exactly-once via server-side dedup.
                self.stats.overload_backoffs += 1
                spent = await self._retry_backoff(
                    request,
                    span,
                    attempt,
                    spent,
                    "OVERLOADED",
                    min_delay=response.retry_after,
                )
                attempt += 1
                continue
            return self._check(response)

    @staticmethod
    def _check(response: Response) -> Response:
        status = response.status
        if status in (Status.OK, Status.NOT_FOUND):
            return response
        name = Status.NAMES.get(status, str(status))
        if status == Status.DEGRADED:
            raise ShardDegradedError(
                f"shard degraded: {response.message}", status
            )
        raise RemoteError(f"{name}: {response.message}", status)

    def _router(self) -> ShardRouter:
        assert self.router is not None, "client not opened"
        return self.router

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def get(
        self, key: bytes, snapshot: Optional[ClusterSnapshot] = None
    ) -> Optional[bytes]:
        shard = self._router().shard_for(key)
        response = await self._call(
            Request(
                op=Op.GET,
                request_id=self._alloc_id(),
                shard=shard,
                key=key,
                snapshot=snapshot.token_for(shard) if snapshot else None,
            )
        )
        return response.value if response.found else None

    async def put(self, key: bytes, value: bytes) -> bool:
        """Returns False when the server skipped a retried duplicate."""
        response = await self._call(
            Request(
                op=Op.PUT,
                request_id=self._alloc_id(),
                shard=self._router().shard_for(key),
                key=key,
                value=value,
            )
        )
        return response.applied

    async def delete(self, key: bytes) -> bool:
        response = await self._call(
            Request(
                op=Op.DELETE,
                request_id=self._alloc_id(),
                shard=self._router().shard_for(key),
                key=key,
            )
        )
        return response.applied

    async def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Apply a batch, split per shard.

        Each per-shard piece is atomic and deduplicated under its own
        request id; atomicity across shards is *not* provided (the pieces
        commit independently), matching every range-sharded store.
        """
        pieces = self._router().split_batch(ops)
        calls = [
            self._call(
                Request(
                    op=Op.BATCH,
                    request_id=self._alloc_id(),
                    shard=shard,
                    ops=shard_ops,
                )
            )
            for shard, shard_ops in sorted(pieces.items())
        ]
        await asyncio.gather(*calls)

    async def scan(
        self,
        lo: bytes = b"\x00",
        hi: Optional[bytes] = None,
        limit: int = 0,
        snapshot: Optional[ClusterSnapshot] = None,
    ) -> List[Tuple[bytes, bytes]]:
        """All pairs in ``[lo, hi)`` across shards, globally sorted.

        Sub-scans run concurrently (pipelined over the pool); shard
        ranges are ordered and internally sorted, so concatenation in
        shard order is the complete merge.
        """
        pieces = self._router().split_range(lo if lo else b"\x00", hi)
        calls = [
            self._call(
                Request(
                    op=Op.SCAN,
                    request_id=self._alloc_id(),
                    shard=shard,
                    lo=sub_lo,
                    hi=sub_hi,
                    limit=limit,
                    snapshot=snapshot.token_for(shard) if snapshot else None,
                )
            )
            for shard, sub_lo, sub_hi in pieces
        ]
        results: List[Tuple[bytes, bytes]] = []
        for response in await asyncio.gather(*calls):
            results.extend(response.pairs)
            if limit and len(results) >= limit:
                break
        return results[:limit] if limit else results

    async def snapshot(self) -> ClusterSnapshot:
        """Pin a read view on every shard.

        The tokens are pinned shard by shard, not atomically across
        shards: like the cross-shard batch, per-shard consistency is
        exact while cross-shard consistency is best-effort.
        """
        tokens: List[int] = []
        for shard in range(self._router().num_shards):
            response = await self._call(
                Request(op=Op.SNAPSHOT, request_id=self._alloc_id(), shard=shard)
            )
            tokens.append(response.snapshot)
        return ClusterSnapshot(tokens)

    async def release(self, snapshot: ClusterSnapshot) -> None:
        for shard, token in enumerate(snapshot.tokens):
            await self._call(
                Request(
                    op=Op.RELEASE,
                    request_id=self._alloc_id(),
                    shard=shard,
                    snapshot=token,
                )
            )

    async def get_property(self, name: str, shard: int = 0) -> Optional[str]:
        response = await self._call(
            Request(
                op=Op.PROPERTY, request_id=self._alloc_id(), shard=shard, name=name
            )
        )
        return response.value.decode("utf-8") if response.found else None

    async def properties(self, name: str) -> List[Optional[str]]:
        """The property from every shard (index = shard)."""
        return list(
            await asyncio.gather(
                *(
                    self.get_property(name, shard)
                    for shard in range(self._router().num_shards)
                )
            )
        )

    async def metrics(self, shard: int = 0) -> Optional[str]:
        """One shard's metrics registry as Prometheus-style text."""
        response = await self._call(
            Request(op=Op.METRICS, request_id=self._alloc_id(), shard=shard)
        )
        return response.value.decode("utf-8") if response.found else None

    async def admin(self, section: str = "metrics") -> Optional[str]:
        """One cluster-wide admin section (``Op.ADMIN``), aggregated
        across every shard server-side; ``None`` for an unknown section.

        Sections: ``metrics`` (merged Prometheus text), ``health`` (JSON
        per-shard states + summed op counters), ``ledger`` (merged I/O
        attribution ledger as JSON), ``windows`` (windowed latency
        percentile series as JSON).  The op is not shard-routed — any
        connection answers for the whole cluster.
        """
        response = await self._call(
            Request(op=Op.ADMIN, request_id=self._alloc_id(), name=section)
        )
        return response.value.decode("utf-8") if response.found else None

    async def all_metrics(self) -> List[Optional[str]]:
        """The metrics dump from every shard (index = shard)."""
        return list(
            await asyncio.gather(
                *(self.metrics(shard) for shard in range(self._router().num_shards))
            )
        )

    async def aclose(self) -> None:
        self._closed = True
        for conn in self._pool:
            if conn is not None:
                await conn.close()
        self._pool = [None] * self._pool_size


# ----------------------------------------------------------------------
# Synchronous facade
# ----------------------------------------------------------------------
class _ClientIterator:
    """DBIterator-shaped pager over :meth:`BlockingClusterClient.scan`."""

    PAGE = 128

    def __init__(self, client: "BlockingClusterClient", start: bytes) -> None:
        self._client = client
        self._page: List[Tuple[bytes, bytes]] = []
        self._index = 0
        self._exhausted = False
        self._fetch(start)

    def _fetch(self, lo: bytes) -> None:
        self._page = self._client.scan(lo, limit=self.PAGE)
        self._index = 0
        if len(self._page) < self.PAGE:
            self._exhausted = True

    @property
    def valid(self) -> bool:
        return self._index < len(self._page)

    def key(self) -> bytes:
        return self._page[self._index][0]

    def value(self) -> bytes:
        return self._page[self._index][1]

    def next(self) -> bool:
        last_key = self.key()
        self._index += 1
        if self._index >= len(self._page) and not self._exhausted:
            # The next page starts just above the last key we returned.
            self._fetch(last_key + b"\x00")
        return self.valid

    def close(self) -> None:
        self._page = []
        self._index = 0

    def __enter__(self) -> "_ClientIterator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _ClusterClockView:
    """Duck-types ``storage.clock`` for drivers timing a whole cluster."""

    def __init__(self, server) -> None:
        self._server = server

    @property
    def now(self) -> float:
        return self._server.sim_now()


class _ClusterStorageView:
    """Duck-types the ``storage`` argument the workload runners take."""

    def __init__(self, server) -> None:
        self.clock = _ClusterClockView(server)


class BlockingClusterClient:
    """Synchronous KeyValueStore-style facade over a loopback cluster.

    Owns a private event loop, an in-process :class:`KVServer`, and an
    async :class:`ClusterClient`, and exposes put/get/delete/seek/
    write_batch/stats so db_bench and YCSB drive a sharded cluster
    through the same interface as a local store.
    """

    def __init__(self, server, **client_kwargs) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self.client: ClusterClient = self._run(
            ClusterClient.open_loopback(server, **client_kwargs)
        )
        self.storage = _ClusterStorageView(server)

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    # -- KeyValueStore-shaped surface -----------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._run(self.client.put(key, value))

    def get(self, key: bytes) -> Optional[bytes]:
        return self._run(self.client.get(key))

    def delete(self, key: bytes) -> None:
        self._run(self.client.delete(key))

    def write_batch(self, ops: Sequence[BatchOp], sync: bool = False) -> None:
        self._run(self.client.write_batch(ops))

    def scan(
        self, lo: bytes = b"\x00", hi: Optional[bytes] = None, limit: int = 0
    ) -> List[Tuple[bytes, bytes]]:
        return self._run(self.client.scan(lo, hi, limit))

    def seek(self, key: bytes) -> _ClientIterator:
        return _ClientIterator(self, key)

    def range_query(self, lo: bytes, hi: bytes, limit: Optional[int] = None):
        # Engine range_query is hi-inclusive; the wire scan is exclusive,
        # so stretch hi by the smallest possible suffix.
        return self.scan(lo, hi + b"\x00", limit or 0)

    def get_property(self, name: str, shard: int = 0) -> Optional[str]:
        return self._run(self.client.get_property(name, shard))

    def metrics(self, shard: int = 0) -> Optional[str]:
        return self._run(self.client.metrics(shard))

    def all_metrics(self) -> List[Optional[str]]:
        return self._run(self.client.all_metrics())

    def admin(self, section: str = "metrics") -> Optional[str]:
        return self._run(self.client.admin(section))

    def enable_tracing(self, sink):
        """One trace per cluster op: client → server → engine spans.

        ``sink`` is a :class:`~repro.obs.trace.TraceSink` or a path.  The
        client tracer is timed on the cluster clock view; every shard's
        tracer (server dispatch + engine) shares the same sink, so the
        whole cluster writes one chronologically-interleaved JSONL file.
        """
        from repro.obs.trace import TraceSink

        if isinstance(sink, str):
            sink = TraceSink(sink)
        self.client.enable_tracing(
            sink,
            clock=_ClusterClockView(self.server),
            seed=self.server.config.seed,
        )
        self.server.enable_tracing(sink)
        return sink

    def stats(self):
        """Aggregate engine stats across all shards (sums counters)."""
        from repro.engines.base import StoreStats

        total = StoreStats()
        for shard in self.server.shards:
            s = shard.db.stats()
            for name, value in vars(s).items():
                if isinstance(value, bool):
                    setattr(total, name, getattr(total, name) or value)
                elif isinstance(value, (int, float)):
                    setattr(total, name, getattr(total, name, 0) + value)
        return total

    def flush_memtable(self) -> None:
        for shard in self.server.shards:
            shard.db.flush_memtable()

    def compact_all(self) -> None:
        for shard in self.server.shards:
            shard.db.compact_all()

    def wait_idle(self) -> None:
        self._run(self.server.wait_idle())

    def close(self) -> None:
        try:
            self._run(self.client.aclose())
            self._run(self.server.aclose())
        finally:
            self._loop.close()

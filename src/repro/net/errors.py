"""Network error taxonomy, mirroring the PR 2 storage-fault taxonomy.

The storage layer distinguishes *transient* faults (retry with backoff)
from *persistent* ones (degrade gracefully); the serving layer maps the
failures a networked client sees onto the same two buckets:

* :class:`TransientNetError` — the connection died or a frame was
  damaged in flight.  Like :class:`repro.errors.TransientIOError`, the
  right response is to reconnect and retry; write retries are safe
  because the server deduplicates them by ``(client_id, request_id)``.
* :class:`ServerUnavailableError` — retries exhausted or the server
  refused the connection; the network-side analogue of
  :class:`repro.errors.PersistentIOError`.
* :class:`ShardDegradedError` — the *server* reported that the shard's
  background-error state machine tripped (sticky
  :class:`repro.errors.BackgroundError`): the shard still serves reads
  but rejects writes until an operator resumes it.  Retrying does not
  help, so the client surfaces it immediately.
"""

from __future__ import annotations

from repro.errors import ReproError


class NetError(ReproError):
    """Base class for every serving-layer error."""


class FrameError(NetError):
    """A wire frame failed its CRC, length, or format checks.

    After a framing error the byte stream cannot be trusted (the reader
    may be mid-frame), so both sides drop the connection; the client then
    treats the call like any transient connection loss.
    """


class TransientNetError(NetError):
    """The connection failed mid-call; reconnecting and retrying may work."""


class ServerUnavailableError(NetError):
    """Retries exhausted or connection refused: the server is unreachable."""


class RetriesExhaustedError(ServerUnavailableError):
    """The client's retry budget ran out against an unavailable shard.

    Raised instead of retrying indefinitely: either the attempt cap
    (``max_retries``) or the total-backoff budget (``retry_budget``
    seconds) was exhausted.  Subclasses
    :class:`ServerUnavailableError`, so existing handlers keep working;
    ``attempts`` and ``backoff_spent`` say what the retry loop consumed.
    """

    def __init__(
        self, message: str, *, attempts: int = 0, backoff_spent: float = 0.0
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.backoff_spent = backoff_spent


class RemoteError(NetError):
    """The server answered with an error status.

    ``status`` is the :class:`repro.net.protocol.Status` byte the server
    sent; ``retryable`` says whether the client's retry loop may re-issue
    the request.
    """

    def __init__(self, message: str, status: int, retryable: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.retryable = retryable


class ShardDegradedError(RemoteError):
    """The target shard is in degraded read-only mode (writes rejected)."""

"""Binary wire protocol: framing, op codes, request/response payloads.

A *frame* is ``[length u32 LE][masked crc32c u32 LE][payload]``.  The CRC
covers the payload and is masked with the same scheme the WAL and sstable
blocks use (:mod:`repro.util.crc`), so a frame that happens to contain a
frame header never re-checksums to itself.  :class:`FrameDecoder`
re-assembles frames from an arbitrary byte stream and raises
:class:`~repro.net.errors.FrameError` on damage — after which the stream
is unusable (the reader may be mid-frame) and the connection must drop.

A *payload* is ``[op u8][request_id varint64][...]``.  Requests carry a
``shard`` varint and an op-specific body; responses carry a status byte
and a body.  All byte strings are varint32-length-prefixed, reusing
:mod:`repro.util.varint` — exactly the sstable block encoding, one layer
up the stack.

Op codes::

    HELLO      client introduces itself; reply carries the shard map
    GET        point lookup (optionally through a snapshot token)
    PUT        single write
    DELETE     single delete
    BATCH      atomic write batch (per shard)
    SCAN       bounded range scan (optionally through a snapshot token)
    SNAPSHOT   pin a consistent read view on one shard; reply: token
    RELEASE    unpin a snapshot token
    PROPERTY   read a ``repro.*`` textual property
    METRICS    dump one shard's metrics registry (Prometheus-style text)

Every request may carry an optional trailing *trace context* — the
``trace_id/span_id`` of the client span that issued it — so a server can
parent its handler span under the caller's and a whole cluster operation
shares one trace.  The field is appended only when non-empty, which keeps
wire bytes identical to the pre-tracing protocol when tracing is off.

Statuses: ``OK``/``NOT_FOUND`` are success shapes; ``DEGRADED`` maps the
shard's sticky :class:`repro.errors.BackgroundError` onto the wire (reads
keep working, writes are rejected until the shard is resumed);
``BAD_REQUEST``/``BAD_SHARD``/``UNSUPPORTED``/``SERVER_ERROR`` are
client- or server-side failures that retrying will not fix;
``UNAVAILABLE`` means the shard's backing worker process is down — a
*transient* condition (clients retry it like a dropped connection, and a
process-mode supervisor may restart the worker in between).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.net.errors import FrameError
from repro.util.crc import crc32c, mask_crc, unmask_crc
from repro.util.varint import (
    decode_varint32,
    decode_varint64,
    decode_varint_run,
    encode_varint32,
    encode_varint64,
)

#: Hard cap on one frame's payload; anything larger is a framing error.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("<II")  # payload length, masked crc32c


# ----------------------------------------------------------------------
# Op codes and statuses
# ----------------------------------------------------------------------
class Op:
    """Request op codes (one byte on the wire)."""

    HELLO = 1
    GET = 2
    PUT = 3
    DELETE = 4
    BATCH = 5
    SCAN = 6
    SNAPSHOT = 7
    RELEASE = 8
    PROPERTY = 9
    METRICS = 10
    #: Read-only admin plane: ``name`` selects a section (``metrics``,
    #: ``health``, ``ledger``, ``windows``) aggregated across every
    #: shard of the server, not routed to one shard.
    ADMIN = 11
    #: Marks a payload as a response to the request id it echoes.
    RESPONSE = 0x80


#: Ops whose effects mutate the store (deduplicated on retry).
WRITE_OPS = (Op.PUT, Op.DELETE, Op.BATCH)

#: Human-readable op names (trace span labels, tooling).
OP_NAMES = {
    Op.HELLO: "hello",
    Op.GET: "get",
    Op.PUT: "put",
    Op.DELETE: "delete",
    Op.BATCH: "batch",
    Op.SCAN: "scan",
    Op.SNAPSHOT: "snapshot",
    Op.RELEASE: "release",
    Op.PROPERTY: "property",
    Op.METRICS: "metrics",
    Op.ADMIN: "admin",
}

_OPS = (
    Op.HELLO,
    Op.GET,
    Op.PUT,
    Op.DELETE,
    Op.BATCH,
    Op.SCAN,
    Op.SNAPSHOT,
    Op.RELEASE,
    Op.PROPERTY,
    Op.METRICS,
    Op.ADMIN,
)


class Status:
    """Response status codes (one byte on the wire)."""

    OK = 0
    NOT_FOUND = 1
    #: The shard is in degraded read-only mode (sticky background error).
    DEGRADED = 2
    BAD_REQUEST = 3
    BAD_SHARD = 4
    UNSUPPORTED = 5
    SERVER_ERROR = 6
    #: The shard's worker process is down (process serving mode); the
    #: condition is transient and clients retry it.
    UNAVAILABLE = 7
    #: Admission control shed this write: the shard's in-flight write
    #: debt hit its cap.  Carries a retry-after hint; clients back off at
    #: least that long (inside the normal retry budget) and retry.
    OVERLOADED = 8

    NAMES = {
        0: "OK",
        1: "NOT_FOUND",
        2: "DEGRADED",
        3: "BAD_REQUEST",
        4: "BAD_SHARD",
        5: "UNSUPPORTED",
        6: "SERVER_ERROR",
        7: "UNAVAILABLE",
        8: "OVERLOADED",
    }


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + CRC header."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload), mask_crc(crc32c(payload))) + payload


class FrameDecoder:
    """Incremental frame re-assembly from a byte stream.

    Feed arbitrary chunks with :meth:`feed`; :meth:`next_frame` returns
    one payload at a time (None while incomplete).  Raises
    :class:`FrameError` on an oversized length or a CRC mismatch, after
    which the decoder refuses further use — the stream cannot be resynced.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._poisoned = False

    def feed(self, data: bytes) -> None:
        if self._poisoned:
            raise FrameError("decoder poisoned by an earlier framing error")
        self._buf += data

    @property
    def buffered_bytes(self) -> int:
        return len(self._buf)

    def next_frame(self) -> Optional[bytes]:
        """One complete payload, or None until more bytes arrive."""
        if self._poisoned:
            raise FrameError("decoder poisoned by an earlier framing error")
        if len(self._buf) < _HEADER.size:
            return None
        length, masked = _HEADER.unpack_from(self._buf)
        if length > MAX_FRAME_BYTES:
            self._poisoned = True
            raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
        end = _HEADER.size + length
        if len(self._buf) < end:
            return None
        payload = bytes(self._buf[_HEADER.size : end])
        del self._buf[:end]
        if crc32c(payload) != unmask_crc(masked):
            self._poisoned = True
            raise FrameError("frame CRC mismatch")
        return payload


# ----------------------------------------------------------------------
# Byte-string helpers (varint32 length prefix)
# ----------------------------------------------------------------------
def _put_bytes(buf: bytearray, data: bytes) -> None:
    buf += encode_varint32(len(data))
    buf += data


def _get_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    length, offset = decode_varint32(data, offset)
    end = offset + length
    if end > len(data):
        raise FrameError("truncated byte string in payload")
    return data[offset:end], end


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
#: One write-batch op: (kind, key, value) with the WAL's KIND_* codes.
BatchOp = Tuple[int, bytes, bytes]

_FLAG_SNAPSHOT = 0x01
_FLAG_HAS_HI = 0x02


@dataclass
class Request:
    """One decoded request; unused fields stay at their defaults."""

    op: int
    request_id: int = 0
    shard: int = 0
    key: bytes = b""
    value: bytes = b""
    ops: List[BatchOp] = field(default_factory=list)
    lo: bytes = b""
    hi: Optional[bytes] = None
    limit: int = 0
    snapshot: Optional[int] = None
    name: str = ""
    client_id: int = 0
    #: Caller's trace context (``trace_id/span_id``); "" when tracing is
    #: off — then nothing extra goes on the wire.
    trace: str = ""

    def encode(self) -> bytes:
        """Serialize to a frame payload (without the frame header)."""
        buf = bytearray([self.op])
        buf += encode_varint64(self.request_id)
        buf += encode_varint32(self.shard)
        op = self.op
        if op == Op.HELLO:
            buf += encode_varint64(self.client_id)
        elif op == Op.GET:
            flags = _FLAG_SNAPSHOT if self.snapshot is not None else 0
            buf.append(flags)
            _put_bytes(buf, self.key)
            if self.snapshot is not None:
                buf += encode_varint64(self.snapshot)
        elif op == Op.PUT:
            _put_bytes(buf, self.key)
            _put_bytes(buf, self.value)
        elif op == Op.DELETE:
            _put_bytes(buf, self.key)
        elif op == Op.BATCH:
            buf += encode_varint32(len(self.ops))
            for kind, key, value in self.ops:
                buf.append(kind)
                _put_bytes(buf, key)
                _put_bytes(buf, value)
        elif op == Op.SCAN:
            flags = 0
            if self.snapshot is not None:
                flags |= _FLAG_SNAPSHOT
            if self.hi is not None:
                flags |= _FLAG_HAS_HI
            buf.append(flags)
            _put_bytes(buf, self.lo)
            if self.hi is not None:
                _put_bytes(buf, self.hi)
            buf += encode_varint32(self.limit)
            if self.snapshot is not None:
                buf += encode_varint64(self.snapshot)
        elif op == Op.SNAPSHOT:
            pass
        elif op == Op.RELEASE:
            buf += encode_varint64(self.snapshot if self.snapshot is not None else 0)
        elif op == Op.PROPERTY:
            _put_bytes(buf, self.name.encode("utf-8"))
        elif op == Op.METRICS:
            pass
        elif op == Op.ADMIN:
            _put_bytes(buf, self.name.encode("utf-8"))
        else:
            raise FrameError(f"cannot encode unknown op {op}")
        if self.trace:
            _put_bytes(buf, self.trace.encode("utf-8"))
        return bytes(buf)


@dataclass
class Response:
    """One decoded response; body fields depend on the request's op."""

    request_id: int = 0
    status: int = Status.OK
    #: GET: the value; PROPERTY: the property text (utf-8).
    value: bytes = b""
    #: GET / PROPERTY: whether the key / property exists.
    found: bool = False
    #: Writes: False when the server recognised a retried duplicate and
    #: skipped re-applying it.
    applied: bool = True
    #: SCAN: the pairs.
    pairs: List[Tuple[bytes, bytes]] = field(default_factory=list)
    #: SNAPSHOT: the token.
    snapshot: int = 0
    #: Error statuses: human-readable message.
    message: str = ""
    #: HELLO: assigned client id, shard count, and router boundaries.
    client_id: int = 0
    shard_count: int = 0
    boundaries: List[bytes] = field(default_factory=list)
    #: OVERLOADED: server's suggested minimum backoff before retrying,
    #: in seconds (microsecond wire granularity).
    retry_after: float = 0.0

    def encode(self) -> bytes:
        buf = bytearray([Op.RESPONSE])
        buf += encode_varint64(self.request_id)
        buf.append(self.status)
        if self.status not in (Status.OK, Status.NOT_FOUND):
            _put_bytes(buf, self.message.encode("utf-8"))
            if self.status == Status.OVERLOADED:
                buf += encode_varint64(int(round(self.retry_after * 1e6)))
            return bytes(buf)
        flags = (0x01 if self.found else 0) | (0x02 if self.applied else 0)
        buf.append(flags)
        _put_bytes(buf, self.value)
        buf += encode_varint32(len(self.pairs))
        for key, value in self.pairs:
            _put_bytes(buf, key)
            _put_bytes(buf, value)
        buf += encode_varint64(self.snapshot)
        buf += encode_varint64(self.client_id)
        buf += encode_varint32(self.shard_count)
        buf += encode_varint32(len(self.boundaries))
        for boundary in self.boundaries:
            _put_bytes(buf, boundary)
        return bytes(buf)


# ----------------------------------------------------------------------
# Replication (ship-log) records — process serving mode durability
# ----------------------------------------------------------------------
#: A shipped group commit: the dedup-filtered ops plus the fresh
#: (client_id, request_id) pairs the commit acknowledged.
SHIP_COMMIT = 1
#: A compact snapshot: the shard's full logical state (sorted pairs)
#: plus the dedup table, superseding every earlier record.
SHIP_SNAPSHOT = 2

#: One dedup-table entry: (client_id, max_request_id, sorted request ids).
DedupEntry = Tuple[int, int, List[int]]


@dataclass
class ShipRecord:
    """One decoded replication record from a worker's ship stream.

    ``seq`` is the worker's commit ordinal (1-based, monotonic): replay
    applies commit records in ``seq`` order on top of the newest
    snapshot, reproducing the exact ``write_batch`` sequence — and hence
    byte-identical engine state when no snapshot truncated the history.
    """

    kind: int
    seq: int
    #: SHIP_COMMIT: fresh (client_id, request_id) pairs this commit acked.
    ids: List[Tuple[int, int]] = field(default_factory=list)
    #: SHIP_COMMIT: the combined (dedup-filtered) batch ops.
    ops: List[BatchOp] = field(default_factory=list)
    #: SHIP_SNAPSHOT: the shard's full logical state.
    pairs: List[Tuple[bytes, bytes]] = field(default_factory=list)
    #: SHIP_SNAPSHOT: the dedup table (exactly-once across restarts).
    dedup: List[DedupEntry] = field(default_factory=list)


def encode_ship_commit(
    seq: int, ids: List[Tuple[int, int]], ops: List[BatchOp]
) -> bytes:
    buf = bytearray([SHIP_COMMIT])
    buf += encode_varint64(seq)
    buf += encode_varint32(len(ids))
    for client_id, request_id in ids:
        buf += encode_varint64(client_id)
        buf += encode_varint64(request_id)
    buf += encode_varint32(len(ops))
    for kind, key, value in ops:
        buf.append(kind)
        _put_bytes(buf, key)
        _put_bytes(buf, value)
    return bytes(buf)


def encode_ship_snapshot(
    seq: int, pairs: List[Tuple[bytes, bytes]], dedup: List[DedupEntry]
) -> bytes:
    buf = bytearray([SHIP_SNAPSHOT])
    buf += encode_varint64(seq)
    buf += encode_varint32(len(pairs))
    for key, value in pairs:
        _put_bytes(buf, key)
        _put_bytes(buf, value)
    buf += encode_varint32(len(dedup))
    for client_id, max_id, ids in dedup:
        buf += encode_varint64(client_id)
        buf += encode_varint64(max_id + 1)  # max_id may be -1 (no writes yet)
        buf += encode_varint32(len(ids))
        for request_id in ids:
            buf += encode_varint64(request_id)
    return bytes(buf)


def decode_ship_record(data: bytes) -> ShipRecord:
    """Parse one replication record; raises :class:`FrameError` on damage."""
    try:
        kind = data[0]
        seq, offset = decode_varint64(data, 1)
        record = ShipRecord(kind=kind, seq=seq)
        if kind == SHIP_COMMIT:
            count, offset = decode_varint32(data, offset)
            for _ in range(count):
                (client_id, request_id), offset = decode_varint_run(
                    data, offset, 2
                )
                record.ids.append((client_id, request_id))
            count, offset = decode_varint32(data, offset)
            for _ in range(count):
                op_kind = data[offset]
                offset += 1
                key, offset = _get_bytes(data, offset)
                value, offset = _get_bytes(data, offset)
                record.ops.append((op_kind, key, value))
        elif kind == SHIP_SNAPSHOT:
            count, offset = decode_varint32(data, offset)
            for _ in range(count):
                key, offset = _get_bytes(data, offset)
                value, offset = _get_bytes(data, offset)
                record.pairs.append((key, value))
            count, offset = decode_varint32(data, offset)
            for _ in range(count):
                client_id, offset = decode_varint64(data, offset)
                max_plus_one, offset = decode_varint64(data, offset)
                nids, offset = decode_varint32(data, offset)
                ids, offset = (
                    decode_varint_run(data, offset, nids) if nids else ((), offset)
                )
                record.dedup.append((client_id, max_plus_one - 1, list(ids)))
        else:
            raise FrameError(f"unknown ship record kind {kind}")
        return record
    except FrameError:
        raise
    except Exception as exc:  # truncated varints etc. → framing error
        raise FrameError(f"malformed ship record: {exc}") from exc


def decode_payload(payload: bytes) -> Union[Request, Response]:
    """Parse one frame payload into a :class:`Request` or :class:`Response`."""
    if not payload:
        raise FrameError("empty payload")
    op = payload[0]
    try:
        request_id, offset = decode_varint64(payload, 1)
        if op == Op.RESPONSE:
            return _decode_response(payload, request_id, offset)
        if op not in _OPS:
            raise FrameError(f"unknown op code {op}")
        return _decode_request(op, payload, request_id, offset)
    except FrameError:
        raise
    except Exception as exc:  # truncated varints etc. → framing error
        raise FrameError(f"malformed payload: {exc}") from exc


def _decode_request(op: int, data: bytes, request_id: int, offset: int) -> Request:
    shard, offset = decode_varint32(data, offset)
    req = Request(op=op, request_id=request_id, shard=shard)
    if op == Op.HELLO:
        req.client_id, offset = decode_varint64(data, offset)
    elif op == Op.GET:
        flags = data[offset]
        offset += 1
        req.key, offset = _get_bytes(data, offset)
        if flags & _FLAG_SNAPSHOT:
            req.snapshot, offset = decode_varint64(data, offset)
    elif op == Op.PUT:
        req.key, offset = _get_bytes(data, offset)
        req.value, offset = _get_bytes(data, offset)
    elif op == Op.DELETE:
        req.key, offset = _get_bytes(data, offset)
    elif op == Op.BATCH:
        count, offset = decode_varint32(data, offset)
        for _ in range(count):
            kind = data[offset]
            offset += 1
            key, offset = _get_bytes(data, offset)
            value, offset = _get_bytes(data, offset)
            req.ops.append((kind, key, value))
    elif op == Op.SCAN:
        flags = data[offset]
        offset += 1
        req.lo, offset = _get_bytes(data, offset)
        if flags & _FLAG_HAS_HI:
            req.hi, offset = _get_bytes(data, offset)
        req.limit, offset = decode_varint32(data, offset)
        if flags & _FLAG_SNAPSHOT:
            req.snapshot, offset = decode_varint64(data, offset)
    elif op == Op.RELEASE:
        req.snapshot, offset = decode_varint64(data, offset)
    elif op in (Op.PROPERTY, Op.ADMIN):
        name, offset = _get_bytes(data, offset)
        req.name = name.decode("utf-8")
    if offset < len(data):
        trace, offset = _get_bytes(data, offset)
        req.trace = trace.decode("utf-8")
    return req


def _decode_response(data: bytes, request_id: int, offset: int) -> Response:
    status = data[offset]
    offset += 1
    resp = Response(request_id=request_id, status=status)
    if status not in (Status.OK, Status.NOT_FOUND):
        message, offset = _get_bytes(data, offset)
        resp.message = message.decode("utf-8", errors="replace")
        if status == Status.OVERLOADED:
            micros, offset = decode_varint64(data, offset)
            resp.retry_after = micros / 1e6
        return resp
    flags = data[offset]
    offset += 1
    resp.found = bool(flags & 0x01)
    resp.applied = bool(flags & 0x02)
    resp.value, offset = _get_bytes(data, offset)
    count, offset = decode_varint32(data, offset)
    for _ in range(count):
        key, offset = _get_bytes(data, offset)
        value, offset = _get_bytes(data, offset)
        resp.pairs.append((key, value))
    # Adjacent varint64 pair: one batched decode instead of two calls.
    (resp.snapshot, resp.client_id), offset = decode_varint_run(data, offset, 2)
    resp.shard_count, offset = decode_varint32(data, offset)
    count, offset = decode_varint32(data, offset)
    for _ in range(count):
        boundary, offset = _get_bytes(data, offset)
        resp.boundaries.append(boundary)
    return resp

"""Asyncio shard server: N range-partitioned engines behind one endpoint.

One :class:`KVServer` process hosts ``shards`` independent engine
instances (any name from :mod:`repro.engines.registry`), each on its own
simulated device with its own clock — the serving-layer model of one
machine (or container) per shard.  Requests carry a shard index chosen
by the client's :class:`~repro.net.router.ShardRouter`; the server's
HELLO response publishes the shard count and boundary keys so clients
configure themselves.

Two properties the storage stack below fought hard for are preserved at
this layer:

* **Group commit** — concurrent writes to one shard coalesce into a
  single engine ``write_batch`` with one WAL sync (the classic group
  commit).  A per-shard drainer task grabs everything queued since it
  last ran; under the deterministic loopback transport the coalescing
  pattern is identical on every same-seed run.
* **Graceful degradation** — when a shard's background-error state
  machine trips (PR 2), writes answer ``DEGRADED`` with the error text
  while reads, scans, snapshots, and properties keep serving from the
  shard's last consistent state.

Write retries are made idempotent by deduplication: every write carries
the connection's ``client_id`` (from HELLO) and a client-chosen
``request_id``; a shard remembers recently applied ids per client and
answers a retried duplicate with ``applied=False`` instead of applying
it twice.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import repro
from repro.engines.registry import create_store
from repro.errors import (
    BackgroundError,
    InvalidArgumentError,
    ReproError,
    StoreClosedError,
)
from repro.net.errors import FrameError
from repro.obs.ledger import IoLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.windows import SUMMARY_PERCENTILES, WindowedHistogram
from repro.net.protocol import (
    OP_NAMES,
    WRITE_OPS,
    Op,
    Request,
    Response,
    Status,
    decode_payload,
    encode_frame,
)
from repro.net.router import ShardRouter
from repro.net.transport import LoopbackEndpoint, StreamEndpoint, loopback_pair


@dataclass
class ServerConfig:
    """Everything tunable about one serving process."""

    engine: str = "pebblesdb"
    shards: int = 1
    #: Router boundaries (``shards - 1`` keys); None derives uniform
    #: boundaries for ``uniform_keys`` db_bench-style ``user...`` keys.
    boundaries: Optional[List[bytes]] = None
    #: Key-space size used to derive default boundaries.
    uniform_keys: int = 100_000
    options: Optional[object] = None  # StoreOptions, engine presets if None
    seed: int = 0
    #: Per-shard DRAM page cache.
    cache_bytes: int = 8 * 1024 * 1024
    #: Coalesce concurrent writes into one engine batch + sync.
    group_commit: bool = True
    #: Sync the WAL once per group commit (durable acknowledgements).
    sync_commits: bool = True
    #: Recently applied write ids remembered per client for dedup.
    dedup_window: int = 4096
    #: Admission control: maximum write requests a shard may have queued
    #: for group commit before new writes are shed with
    #: ``Status.OVERLOADED`` (0 = unlimited).  Shedding keeps the commit
    #: queue bounded instead of letting overload turn into unbounded
    #: in-process queueing.
    max_write_debt: int = 0
    #: Minimum backoff hint (seconds) carried by OVERLOADED responses;
    #: scaled up with how far past the cap the queue is.
    overload_retry_after: float = 0.005
    # -- process serving mode: durability + supervision (see net/mp.py) --
    #: Workers ship every acknowledged group commit to the parent, which
    #: keeps a durable per-shard log so acknowledged writes survive a
    #: worker crash (restart replays the log into the fresh worker).
    ship_log: bool = True
    #: Ship a compact snapshot every N commits so the parent can truncate
    #: the log (0 = never; replay then reproduces byte-identical state).
    snapshot_interval: int = 0
    #: Run the supervisor loop: heartbeat worker processes, auto-restart
    #: dead/hung ones with replay, trip the restart-storm breaker.
    supervise: bool = True
    #: Seconds between supervisor ticks (wall clock).
    heartbeat_interval: float = 0.25
    #: A worker that does not answer a ping within this deadline is
    #: declared hung and killed (then restarted like a crash).
    heartbeat_timeout: float = 5.0
    #: Consecutive failed restarts before the breaker trips the shard
    #: into sticky DEGRADED (resume_shard clears it).
    max_consecutive_restarts: int = 5
    #: Deterministic capped exponential backoff between auto-restarts.
    restart_backoff_base: float = 0.05
    restart_backoff_max: float = 2.0
    #: A restarted worker alive this long resets the consecutive-failure
    #: count (distinguishes a crash storm from isolated crashes).
    restart_probation: float = 1.0
    #: Directory the parent supervisor's flight recorder dumps into on a
    #: supervised restart or breaker trip (None = keep in memory only).
    #: Engine-level dumps are configured separately via
    #: ``StoreOptions.trace_dump_dir``.
    trace_dump_dir: Optional[str] = None

    def make_router(self) -> ShardRouter:
        if self.boundaries is not None:
            return ShardRouter(self.boundaries)
        if self.shards == 1:
            return ShardRouter.single()
        from repro.workloads.distributions import KeyCodec

        codec = KeyCodec(16)
        sample = (codec.encode(i) for i in range(self.uniform_keys))
        return ShardRouter.from_samples(sample, self.shards)


#: Sections the read-only ``Op.ADMIN`` wire op understands.
ADMIN_SECTIONS = ("metrics", "health", "ledger", "windows")


def aggregate_admin(
    section: str,
    parts: List[Dict[str, object]],
    parent_registry: Optional[MetricsRegistry] = None,
    parent_ledger: Optional[IoLedger] = None,
) -> Optional[str]:
    """Aggregate per-shard admin parts into one section's text.

    ``parts`` is a list of per-shard dicts (see ``KVServer._admin_parts``)
    with keys ``shard``, ``state``, ``registry``, ``health``, ``ops``,
    ``ledger`` (an :meth:`IoLedger.to_dict` payload) and ``windows``
    (op name → :class:`WindowedHistogram`).  Both serving modes — the
    in-process :class:`KVServer` and the process-mode supervisor — feed
    the *same* function, so a same-seed cluster returns identical
    aggregated snapshots in either mode (the process mode additionally
    merges the parent supervisor's registry and ship-log ledger when it
    has any).  Returns ``None`` for an unknown section.
    """
    if section in ("", "metrics"):
        merged = MetricsRegistry()
        for part in parts:
            registry = part.get("registry")
            if registry is not None:
                merged.merge(registry)
        if parent_registry is not None:
            merged.merge(parent_registry)
        return merged.to_text()
    if section == "health":
        rows = [
            {
                "shard": part["shard"],
                "state": part.get("state", "active"),
                "health": part.get("health", ""),
                "ops": part.get("ops", {}),
            }
            for part in sorted(parts, key=lambda p: p["shard"])
        ]
        totals: Dict[str, int] = {}
        for part in parts:
            for name, value in (part.get("ops") or {}).items():
                totals[name] = totals.get(name, 0) + value
        return json.dumps(
            {"shards": rows, "totals": totals},
            sort_keys=True,
            separators=(",", ":"),
        )
    if section == "ledger":
        ledger = IoLedger()
        for part in sorted(parts, key=lambda p: p["shard"]):
            ledger = ledger.merge(IoLedger.from_dict(part.get("ledger") or {}))
        if parent_ledger is not None:
            ledger = ledger.merge(parent_ledger)
        return ledger.to_json()
    if section == "windows":
        combined: Dict[str, WindowedHistogram] = {}
        for part in sorted(parts, key=lambda p: p["shard"]):
            for op, wh in (part.get("windows") or {}).items():
                mine = combined.get(op)
                if mine is None:
                    mine = WindowedHistogram(
                        window_seconds=wh.window_seconds, lo=wh.lo, growth=wh.growth
                    )
                    combined[op] = mine
                mine.merge(wh)
        series = {
            op: {
                name: [[i, v] for i, v in wh.percentile_series(q)]
                for name, q in SUMMARY_PERCENTILES
            }
            for op, wh in sorted(combined.items())
        }
        width = (
            next(iter(combined.values())).window_seconds if combined else 0.5
        )
        return json.dumps(
            {"window_seconds": width, "series": series},
            sort_keys=True,
            separators=(",", ":"),
        )
    return None


@dataclass
class ShardStats:
    """Serving counters for one shard."""

    gets: int = 0
    puts: int = 0
    deletes: int = 0
    batches: int = 0
    scans: int = 0
    snapshots: int = 0
    properties: int = 0
    metrics: int = 0
    #: Group commits executed and writes coalesced into them.
    group_commits: int = 0
    coalesced_writes: int = 0
    #: Retried writes recognised and skipped.
    duplicate_writes: int = 0
    #: Writes rejected because the shard is degraded.
    degraded_rejects: int = 0
    #: Writes shed by admission control (OVERLOADED responses).
    overload_rejects: int = 0
    errors: int = 0


class _DedupTable:
    """Recently applied (client, request) ids, bounded per client."""

    def __init__(self, window: int) -> None:
        self._window = window
        self._applied: Dict[int, Tuple[int, Set[int]]] = {}

    def seen(self, client_id: int, request_id: int) -> bool:
        if client_id == 0:
            return False  # anonymous clients opt out of dedup
        max_id, ids = self._applied.get(client_id, (-1, set()))
        if request_id in ids:
            return True
        # Ids that fell out of the window are conservatively treated as
        # applied: they can only be very old retries.
        return request_id <= max_id - self._window

    def record(self, client_id: int, request_id: int) -> None:
        if client_id == 0:
            return
        max_id, ids = self._applied.setdefault(client_id, (-1, set()))
        ids.add(request_id)
        new_max = max(max_id, request_id)
        if len(ids) > 2 * self._window:
            floor = new_max - self._window
            ids = {i for i in ids if i > floor}
        self._applied[client_id] = (new_max, ids)

    def export(self) -> List[Tuple[int, int, List[int]]]:
        """Deterministic dump: (client_id, max_id, sorted ids) per client."""
        return [
            (client_id, max_id, sorted(ids))
            for client_id, (max_id, ids) in sorted(self._applied.items())
        ]

    def restore(self, entries: List[Tuple[int, int, List[int]]]) -> None:
        self._applied = {
            client_id: (max_id, set(ids)) for client_id, max_id, ids in entries
        }


class Shard:
    """One engine instance plus its serving state."""

    def __init__(self, index: int, config: ServerConfig) -> None:
        self.index = index
        self.env = repro.Environment(cache_bytes=config.cache_bytes)
        self.db = create_store(
            config.engine,
            self.env.storage,
            options=config.options,
            prefix=f"shard{index}/",
            seed=config.seed + index,
        )
        self.config = config
        self.stats = ShardStats()
        #: Engine tracer (component ``shardN``) once tracing is enabled;
        #: server-side dispatch spans share it with the engine's spans.
        self.tracer = None
        #: Called with ``(combined_ops, fresh_ids)`` after every group
        #: commit the engine accepted, *before* the writes are
        #: acknowledged — the log-shipping hook of the process serving
        #: mode (see :mod:`repro.net.mp`).
        self.on_commit: Optional[Callable[[list, List[Tuple[int, int]]], None]] = None
        self._snapshots: Dict[int, object] = {}
        self._next_snapshot_token = 1
        self._dedup = _DedupTable(config.dedup_window)
        # Group-commit queue: (ops, client_id, request_id, future, trace_ctx).
        self._write_queue: List[Tuple[list, int, int, asyncio.Future, object]] = []
        self._writer_task: Optional[asyncio.Task] = None

    @property
    def write_debt(self) -> int:
        """Write requests queued for group commit (admission input)."""
        return len(self._write_queue)

    # ------------------------------------------------------------------
    # Write path (group commit)
    # ------------------------------------------------------------------
    async def submit_write(
        self, ops: list, client_id: int, request_id: int, trace_ctx=None
    ) -> bool:
        """Queue a write for the next group commit; True once applied.

        Returns False when the write was recognised as a retried
        duplicate and skipped.  Raises what the engine raised when the
        commit failed (every queued write in the failed batch raises).
        ``trace_ctx`` is the server span of the request; the engine-side
        write span of a group commit adopts the first queued context.
        """
        if not self.config.group_commit:
            return self._apply_writes([(ops, client_id, request_id, None, trace_ctx)])[0]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._write_queue.append((ops, client_id, request_id, future, trace_ctx))
        if self._writer_task is None or self._writer_task.done():
            self._writer_task = asyncio.ensure_future(self._drain_writes())
        return await future

    async def _drain_writes(self) -> None:
        # Yield once so every writer that is already runnable gets to
        # enqueue before the batch is cut — this is what makes commits
        # *group* commits under concurrency.
        await asyncio.sleep(0)
        while self._write_queue:
            batch = self._write_queue
            self._write_queue = []
            try:
                applied = self._apply_writes(batch)
            except ReproError as exc:
                for _, _, _, future, _ in batch:
                    if future is not None and not future.done():
                        future.set_exception(exc)
            else:
                for (_, _, _, future, _), was_applied in zip(batch, applied):
                    if future is not None and not future.done():
                        future.set_result(was_applied)
            await asyncio.sleep(0)

    def _apply_writes(self, batch: list) -> List[bool]:
        """One group commit: dedup, combine, write, record.

        Raises on engine failure *before* any dedup id is recorded, so a
        failed commit stays retryable.
        """
        combined: list = []
        applied_flags: List[bool] = []
        fresh: List[Tuple[int, int]] = []
        batch_ctx = None
        for ops, client_id, request_id, _, ctx in batch:
            if self._dedup.seen(client_id, request_id):
                applied_flags.append(False)
                self.stats.duplicate_writes += 1
            else:
                combined.extend(ops)
                fresh.append((client_id, request_id))
                applied_flags.append(True)
                if batch_ctx is None:
                    batch_ctx = ctx
        if combined:
            # The engine write span of a coalesced commit joins the first
            # contributing request's trace (the others are linked by the
            # shared group_commits counter, not by span parentage).
            if self.tracer is not None and batch_ctx is not None:
                with self.tracer.adopt(batch_ctx):
                    self.db.write_batch(combined, sync=self.config.sync_commits)
            else:
                self.db.write_batch(combined, sync=self.config.sync_commits)
            self.stats.group_commits += 1
            self.stats.coalesced_writes += len(fresh)
        for client_id, request_id in fresh:
            self._dedup.record(client_id, request_id)
        if fresh and self.on_commit is not None:
            # Ship the acknowledged commit before any future resolves:
            # once the record is externalized, a crash between here and
            # the client's response cannot lose the write.
            self.on_commit(combined, fresh)
        return applied_flags

    # ------------------------------------------------------------------
    # Replay (process serving mode: restore a restarted worker)
    # ------------------------------------------------------------------
    def apply_shipped_commit(
        self, ops: list, ids: List[Tuple[int, int]]
    ) -> None:
        """Re-apply one shipped group commit from the parent's log.

        Issues the exact ``write_batch`` call the original commit made
        (same combined ops, same sync flag) and re-records its dedup
        ids, so a full-log replay reproduces byte-identical engine state
        and retried writes stay exactly-once across the restart.  The
        :attr:`on_commit` hook is deliberately not invoked — the parent
        already holds these records.
        """
        if ops:
            self.db.write_batch(list(ops), sync=self.config.sync_commits)
        for client_id, request_id in ids:
            self._dedup.record(client_id, request_id)

    def restore_snapshot(
        self,
        pairs: List[Tuple[bytes, bytes]],
        dedup_entries: List[Tuple[int, int, List[int]]],
    ) -> None:
        """Load a shipped compact snapshot into a fresh shard (logical
        restore: the key-value state and dedup table are exact, the
        physical sstable layout is not)."""
        from repro.util.keys import KIND_PUT

        if pairs:
            self.db.write_batch(
                [(KIND_PUT, key, value) for key, value in pairs],
                sync=self.config.sync_commits,
            )
        self._dedup.restore(dedup_entries)

    def export_snapshot(self) -> Tuple[list, List[Tuple[int, int, List[int]]]]:
        """The shard's full logical state for a compact ship snapshot."""
        return list(self.db.scan()), self._dedup.export()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def create_snapshot(self) -> int:
        get_snapshot = getattr(self.db, "get_snapshot", None)
        if get_snapshot is None:
            raise NotImplementedError(
                f"engine {type(self.db).__name__} has no snapshots"
            )
        token = self._next_snapshot_token
        self._next_snapshot_token += 1
        self._snapshots[token] = get_snapshot()
        self.stats.snapshots += 1
        return token

    def release_snapshot(self, token: int) -> None:
        snapshot = self._snapshots.pop(token, None)
        if snapshot is not None:
            self.db.release_snapshot(snapshot)

    def snapshot_for(self, token: Optional[int]):
        if token is None:
            return None
        snapshot = self._snapshots.get(token)
        if snapshot is None:
            raise InvalidArgumentError(f"unknown snapshot token {token}")
        return snapshot

    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """Hash of every on-storage byte (determinism assertions)."""
        digest = hashlib.sha256()
        for name in self.env.storage.list_files(""):
            data = self.env.storage._files[name].data  # test support: raw view
            digest.update(name.encode())
            digest.update(len(data).to_bytes(8, "little"))
            digest.update(bytes(data))
        return digest.hexdigest()

    def close(self) -> None:
        for token in list(self._snapshots):
            self.release_snapshot(token)
        try:
            self.db.close()
        except ReproError:  # pragma: no cover - close is best-effort
            pass


class KVServer:
    """Hosts the shards and speaks the wire protocol.

    ``shard_ids`` restricts the server to a subset of the cluster's
    shards while keeping their *global* identity — shard ``i`` keeps its
    ``shardN/`` storage prefix and ``seed + i`` engine seed, so a
    process-mode worker hosting one shard produces byte-identical state
    to the same shard inside a full loopback server.  The HELLO response
    still publishes the full cluster map (router boundaries are a
    cluster property); requests for shards this server does not host
    answer ``BAD_SHARD``.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        shard_ids: Optional[List[int]] = None,
        **overrides,
    ) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise InvalidArgumentError("pass either a config or overrides, not both")
        self.config = config
        self.router = config.make_router()
        if self.router.num_shards != config.shards:
            raise InvalidArgumentError(
                f"{config.shards} shards need {config.shards - 1} boundaries, "
                f"got {self.router.num_shards - 1}"
            )
        if shard_ids is None:
            shard_ids = list(range(config.shards))
        elif any(not 0 <= i < config.shards for i in shard_ids):
            raise InvalidArgumentError(
                f"shard_ids {shard_ids} out of range for {config.shards} shards"
            )
        self.shards = [Shard(i, config) for i in shard_ids]
        self._shard_map = {shard.index: shard for shard in self.shards}
        #: Frames that failed CRC/format checks (the CI smoke asserts 0).
        self.protocol_errors = 0
        self._next_anonymous_client = 1
        self._connection_tasks: "Set[asyncio.Task]" = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def connect_loopback(self) -> LoopbackEndpoint:
        """A new client endpoint served in-process (deterministic path)."""
        client_side, server_side = loopback_pair()
        task = asyncio.ensure_future(self.handle_connection(server_side))
        self._connection_tasks.add(task)
        task.add_done_callback(self._connection_tasks.discard)
        return client_side

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the TCP listener; returns the asyncio server object."""

        async def on_client(reader, writer):
            task = asyncio.current_task()
            if task is not None:
                self._connection_tasks.add(task)
                task.add_done_callback(self._connection_tasks.discard)
            try:
                await self.handle_connection(StreamEndpoint(reader, writer))
            except asyncio.CancelledError:
                # Server shutdown cancels connection handlers; finish
                # quietly instead of surfacing the cancellation to the
                # stream machinery's done-callback.
                pass

        self._tcp_server = await asyncio.start_server(on_client, host, port)
        return self._tcp_server

    @property
    def tcp_address(self) -> Tuple[str, int]:
        assert self._tcp_server is not None, "serve_tcp was not called"
        sock = self._tcp_server.sockets[0]
        address = sock.getsockname()
        return address[0], address[1]

    async def handle_connection(self, endpoint) -> None:
        """Read frames, dispatch requests, write responses until EOF."""
        from repro.net.protocol import FrameDecoder

        decoder = FrameDecoder()
        client_id = 0
        inflight: "Set[asyncio.Task]" = set()
        try:
            while True:
                chunk = await endpoint.read(65536)
                if not chunk:
                    break
                try:
                    decoder.feed(chunk)
                    while True:
                        payload = decoder.next_frame()
                        if payload is None:
                            break
                        message = decode_payload(payload)
                        if not isinstance(message, Request):
                            raise FrameError("client sent a response payload")
                        if message.op == Op.HELLO:
                            client_id = self._handle_hello(message, endpoint)
                            continue
                        task = asyncio.ensure_future(
                            self._serve_request(message, client_id, endpoint)
                        )
                        inflight.add(task)
                        task.add_done_callback(inflight.discard)
                except FrameError:
                    # The stream cannot be resynced after a bad frame;
                    # drop the connection and let the client retry.
                    self.protocol_errors += 1
                    break
        finally:
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            endpoint.close()

    def _handle_hello(self, request: Request, endpoint) -> int:
        client_id = request.client_id
        if client_id == 0:
            client_id = self._next_anonymous_client
            self._next_anonymous_client += 1
        response = Response(
            request_id=request.request_id,
            status=Status.OK,
            client_id=client_id,
            shard_count=self.router.num_shards,
            boundaries=list(self.router.boundaries),
        )
        self._send(endpoint, response)
        return client_id

    async def _serve_request(self, request: Request, client_id: int, endpoint) -> None:
        try:
            response = await self._dispatch(request, client_id)
        except Exception as exc:  # never kill the connection on one op
            response = Response(
                request_id=request.request_id,
                status=Status.SERVER_ERROR,
                message=f"{type(exc).__name__}: {exc}",
            )
        self._send(endpoint, response)

    def _send(self, endpoint, response: Response) -> None:
        try:
            endpoint.write(encode_frame(response.encode()))
        except ReproError:
            pass  # connection already gone; the client will retry

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_trace(trace: str):
        """Wire-carried ``trace_id/span_id`` → SpanContext tuple (or None)."""
        if not trace:
            return None
        trace_id, _, span_id = trace.partition("/")
        return (trace_id, span_id) if span_id else None

    async def _dispatch(self, request: Request, client_id: int) -> Response:
        if request.op == Op.ADMIN:
            # Admin is server-wide, never shard-routed: aggregate over
            # every hosted shard regardless of the request's shard field.
            text = self.admin_text(request.name)
            return Response(
                request_id=request.request_id,
                found=text is not None,
                value=(text or "").encode("utf-8"),
            )
        shard = self._shard_map.get(request.shard)
        if shard is None:
            return Response(
                request_id=request.request_id,
                status=Status.BAD_SHARD,
                message=(
                    f"no shard {request.shard} "
                    f"(hosting {sorted(self._shard_map)})"
                ),
            )
        trc = shard.tracer
        if trc is None:
            return await self._dispatch_op(shard, request, client_id, None)
        span = trc.start_span(
            f"server.{OP_NAMES.get(request.op, str(request.op))}",
            kind="server",
            parent=self._parse_trace(request.trace),
            shard=shard.index,
        )
        try:
            if request.op in WRITE_OPS:
                # The write path parks on the group-commit queue; the
                # engine-side span adopts the context inside the commit
                # instead of here (adopting across awaits would let
                # concurrent requests cross their contexts).
                response = await self._dispatch_op(
                    shard, request, client_id, span.context
                )
            else:
                with trc.adopt(span.context):
                    response = await self._dispatch_op(
                        shard, request, client_id, span.context
                    )
            span.set(status=Status.NAMES.get(response.status, str(response.status)))
            return response
        finally:
            span.end()

    async def _dispatch_op(
        self, shard: Shard, request: Request, client_id: int, trace_ctx
    ) -> Response:
        op = request.op
        rid = request.request_id
        try:
            if op == Op.GET:
                shard.stats.gets += 1
                snapshot = shard.snapshot_for(request.snapshot)
                if snapshot is not None:
                    value = shard.db.get(request.key, snapshot=snapshot)
                else:
                    value = shard.db.get(request.key)
                return Response(
                    request_id=rid,
                    found=value is not None,
                    value=value if value is not None else b"",
                )
            if op in (Op.PUT, Op.DELETE, Op.BATCH):
                return await self._dispatch_write(shard, request, client_id, trace_ctx)
            if op == Op.SCAN:
                shard.stats.scans += 1
                pairs = self._scan(shard, request)
                return Response(request_id=rid, pairs=pairs)
            if op == Op.SNAPSHOT:
                try:
                    token = shard.create_snapshot()
                except NotImplementedError as exc:
                    return Response(
                        request_id=rid, status=Status.UNSUPPORTED, message=str(exc)
                    )
                return Response(request_id=rid, snapshot=token)
            if op == Op.RELEASE:
                shard.release_snapshot(request.snapshot or 0)
                return Response(request_id=rid)
            if op == Op.PROPERTY:
                shard.stats.properties += 1
                text = shard.db.get_property(request.name)
                return Response(
                    request_id=rid,
                    found=text is not None,
                    value=(text or "").encode("utf-8"),
                )
            if op == Op.METRICS:
                shard.stats.metrics += 1
                text = shard.db.get_property("repro.metrics")
                return Response(
                    request_id=rid,
                    found=text is not None,
                    value=(text or "").encode("utf-8"),
                )
            return Response(
                request_id=rid,
                status=Status.BAD_REQUEST,
                message=f"unhandled op {op}",
            )
        except InvalidArgumentError as exc:
            shard.stats.errors += 1
            return Response(
                request_id=rid, status=Status.BAD_REQUEST, message=str(exc)
            )
        except (StoreClosedError, ReproError) as exc:
            shard.stats.errors += 1
            return Response(
                request_id=rid, status=Status.SERVER_ERROR, message=str(exc)
            )

    async def _dispatch_write(
        self, shard: Shard, request: Request, client_id: int, trace_ctx=None
    ) -> Response:
        from repro.util.keys import KIND_DELETE, KIND_PUT

        if request.op == Op.PUT:
            shard.stats.puts += 1
            ops = [(KIND_PUT, request.key, request.value)]
        elif request.op == Op.DELETE:
            shard.stats.deletes += 1
            ops = [(KIND_DELETE, request.key, b"")]
        else:
            shard.stats.batches += 1
            ops = list(request.ops)
        if shard.db.is_degraded:
            shard.stats.degraded_rejects += 1
            return Response(
                request_id=request.request_id,
                status=Status.DEGRADED,
                message=shard.db.get_property("repro.background-error") or "degraded",
            )
        cap = self.config.max_write_debt
        if cap and shard.write_debt >= cap:
            # Shed instead of queueing: the client backs off at least
            # ``retry_after`` (scaled by how oversubscribed the queue is)
            # and retries inside its normal retry budget, so an
            # acknowledged write is still exactly-once via dedup.
            shard.stats.overload_rejects += 1
            hint = self.config.overload_retry_after * max(
                1.0, shard.write_debt / cap
            )
            # Mirror into the store registry so `repro.health` and shell
            # `stats` surface shedding, and snapshot the flight recorder.
            registry = getattr(shard.db, "registry", None)
            if registry is not None:
                registry.counter("server.overload_rejects").value += 1
                registry.counter("server.retry_after_hints").value += 1
            recorder = getattr(shard.db, "recorder", None)
            if recorder is not None:
                recorder.point(
                    "server.overloaded",
                    shard=shard.index,
                    debt=shard.write_debt,
                    retry_after=hint,
                )
                recorder.dump("overloaded")
            return Response(
                request_id=request.request_id,
                status=Status.OVERLOADED,
                message=f"shard {shard.index} write queue full "
                f"({shard.write_debt}/{cap})",
                retry_after=hint,
            )
        try:
            applied = await shard.submit_write(
                ops, client_id, request.request_id, trace_ctx
            )
        except BackgroundError as exc:
            shard.stats.degraded_rejects += 1
            return Response(
                request_id=request.request_id,
                status=Status.DEGRADED,
                message=str(exc),
            )
        return Response(request_id=request.request_id, applied=applied)

    def _scan(self, shard: Shard, request: Request) -> List[Tuple[bytes, bytes]]:
        snapshot = shard.snapshot_for(request.snapshot)
        lo = request.lo if request.lo else b"\x00"
        if snapshot is not None:
            iterator = shard.db.seek(lo, snapshot=snapshot)
        else:
            iterator = shard.db.seek(lo)
        pairs: List[Tuple[bytes, bytes]] = []
        limit = request.limit or None
        with iterator as it:
            while it.valid:
                key = it.key()
                if request.hi is not None and key >= request.hi:
                    break
                pairs.append((key, it.value()))
                if limit is not None and len(pairs) >= limit:
                    break
                it.next()
        return pairs

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def enable_tracing(self, sink) -> None:
        """Route every shard's spans (server + engine) into ``sink``.

        Each shard gets its own tracer (component ``shardN``) so span
        ids stay a pure function of per-shard call order; all tracers
        share the one sink, giving a single-file cross-shard trace.
        """
        for shard in self.shards:
            shard.tracer = shard.db.enable_tracing(
                sink, component=f"shard{shard.index}"
            )

    def metrics_text(self) -> str:
        """Cluster-wide exposition: counters summed, gauges maxed."""
        merged = MetricsRegistry()
        for shard in self.shards:
            shard.db.stats()  # refresh derived gauges before the dump
            registry = getattr(shard.db, "registry", None)
            if registry is not None:
                merged.merge(registry)
        return merged.to_text()

    def _admin_parts(self) -> List[Dict[str, object]]:
        """Per-shard inputs for :func:`aggregate_admin`.

        The process serving mode asks each worker for exactly this
        structure over the control pipe (everything in it pickles), so
        loopback and process modes aggregate identical parts.
        """
        parts: List[Dict[str, object]] = []
        for shard in self.shards:
            shard.db.stats()  # refresh derived gauges/extras
            parts.append(
                {
                    "shard": shard.index,
                    "state": "active",
                    "registry": getattr(shard.db, "registry", None),
                    "health": shard.db.get_property("repro.health") or "",
                    "ops": dict(vars(shard.stats)),
                    "ledger": IoLedger.from_storage(shard.env.storage).to_dict(),
                    "windows": dict(getattr(shard.db, "op_windows", {})),
                }
            )
        return parts

    def admin_text(self, section: str) -> Optional[str]:
        """One aggregated admin section (``Op.ADMIN``); None if unknown."""
        return aggregate_admin(section, self._admin_parts())

    def sim_now(self) -> float:
        """Cluster simulated time: the slowest shard's clock."""
        return max(shard.env.clock.now for shard in self.shards)

    def shard_sim_times(self) -> List[float]:
        return [shard.env.clock.now for shard in self.shards]

    def state_digests(self) -> List[str]:
        """Per-shard on-storage digests (determinism assertions)."""
        return [shard.state_digest() for shard in self.shards]

    def total_ops(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self.shards:
            for name, value in vars(shard.stats).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    async def wait_idle(self) -> None:
        """Let in-flight group commits and engine background work finish."""
        for shard in self.shards:
            if shard._writer_task is not None and not shard._writer_task.done():
                await shard._writer_task
            shard.db.wait_idle()

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        await self.wait_idle()
        for shard in self.shards:
            shard.close()

    def close(self) -> None:
        """Synchronous close for callers outside an event loop."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

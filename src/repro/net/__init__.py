"""repro.net — the sharded serving layer.

Turns any engine from :mod:`repro.engines.registry` into a networked
key-value service.  Four layers, bottom to top:

* :mod:`repro.net.protocol` — length-prefixed, CRC-guarded binary frames
  carrying get/put/delete/write-batch/scan/snapshot/property requests;
* :mod:`repro.net.transport` — duck-typed byte endpoints: a deterministic
  in-memory loopback pair (tests, benchmarks) and an asyncio TCP wrapper
  (the ``repro-server`` CLI), plus deterministic connection-fault
  injection in the spirit of :mod:`repro.sim.faults`;
* :mod:`repro.net.router` — boundary-key range partitioning across
  shards (FLSM guards, one level up), splitting scans and batches;
* :mod:`repro.net.server` / :mod:`repro.net.client` — an asyncio server
  hosting N range-partitioned shards with per-shard group commit and
  graceful degraded-mode responses, and a pooling/pipelining client with
  retry/backoff and idempotent (deduplicated) write retries;
* :mod:`repro.net.mp` — the multiprocessing serving mode: one worker
  process per shard behind a relaying parent, turning the simulated
  shard scaling into wall-clock multi-core scaling.  The parent keeps a
  durable per-shard ship log of acknowledged commits, supervises worker
  death/hangs with auto-restart + replay, and supports graceful shard
  handoff for rolling restarts.
"""

from repro.net.client import BlockingClusterClient, ClusterClient, ClusterSnapshot
from repro.net.errors import (
    FrameError,
    NetError,
    RemoteError,
    RetriesExhaustedError,
    ServerUnavailableError,
    ShardDegradedError,
    TransientNetError,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    Request,
    Response,
    Status,
    decode_payload,
    encode_frame,
)
from repro.net.mp import ProcessKVServer, make_server
from repro.net.router import ShardRouter
from repro.net.server import KVServer, ServerConfig
from repro.net.transport import (
    ConnectionFaultPlan,
    FaultyEndpoint,
    loopback_pair,
)

__all__ = [
    "BlockingClusterClient",
    "ClusterClient",
    "ClusterSnapshot",
    "ConnectionFaultPlan",
    "FaultyEndpoint",
    "FrameDecoder",
    "FrameError",
    "KVServer",
    "MAX_FRAME_BYTES",
    "NetError",
    "ProcessKVServer",
    "RemoteError",
    "Request",
    "RetriesExhaustedError",
    "Response",
    "ServerConfig",
    "ServerUnavailableError",
    "ShardDegradedError",
    "ShardRouter",
    "Status",
    "TransientNetError",
    "decode_payload",
    "encode_frame",
    "loopback_pair",
    "make_server",
]

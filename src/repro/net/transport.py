"""Byte transports: deterministic loopback pipes and an asyncio TCP shim.

Everything above this module talks to a duck-typed *endpoint*::

    await endpoint.read(n)   # up to n bytes; b"" once the peer closed
    endpoint.write(data)     # buffer outgoing bytes (one frame per call)
    await endpoint.drain()   # backpressure point
    endpoint.close()         # drop the connection

:func:`loopback_pair` builds two in-memory endpoints joined back to back.
They use only asyncio futures on one event loop — no sockets, no timers —
so a client+server conversation over loopback is fully deterministic:
the same seed and the same call sequence schedule the same task
interleaving every run, which is what lets the net tests assert
byte-identical shard states.

:class:`StreamEndpoint` adapts an asyncio ``(StreamReader, StreamWriter)``
pair to the same interface for the real TCP path.

:class:`FaultyEndpoint` + :class:`ConnectionFaultPlan` inject the network
analogues of the PR 2 storage faults, deterministically by frame count:
a *cut* (connection dies: the peer sees EOF, the writer sees a transient
error) and a *corrupt* (one payload byte flipped in flight, caught by the
frame CRC on the receiving side).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.net.errors import TransientNetError


class _PipeBuffer:
    """One direction of a loopback pipe: FIFO chunks plus an EOF marker."""

    def __init__(self) -> None:
        self._chunks: Deque[bytes] = deque()
        self._eof = False
        self._waiter: Optional[asyncio.Future] = None

    def feed(self, data: bytes) -> None:
        if data and not self._eof:
            self._chunks.append(data)
            self._wake()

    def feed_eof(self) -> None:
        self._eof = True
        self._wake()

    def _wake(self) -> None:
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    async def read(self, n: int) -> bytes:
        while not self._chunks:
            if self._eof:
                return b""
            self._waiter = asyncio.get_running_loop().create_future()
            try:
                await self._waiter
            finally:
                self._waiter = None
        chunk = self._chunks.popleft()
        if len(chunk) > n:
            self._chunks.appendleft(chunk[n:])
            chunk = chunk[:n]
        return chunk


class LoopbackEndpoint:
    """One end of an in-memory duplex pipe."""

    def __init__(self, rx: _PipeBuffer, tx: _PipeBuffer) -> None:
        self._rx = rx
        self._tx = tx
        self._closed = False

    async def read(self, n: int = 65536) -> bytes:
        return await self._rx.read(n)

    def write(self, data: bytes) -> None:
        if self._closed:
            raise TransientNetError("connection is closed")
        self._tx.feed(data)

    async def drain(self) -> None:
        # In-memory pipes have unbounded buffers; yield once so readers
        # scheduled by the write run before the writer continues.
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._tx.feed_eof()
            self._rx.feed_eof()

    @property
    def is_closed(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None


def loopback_pair() -> Tuple[LoopbackEndpoint, LoopbackEndpoint]:
    """Two endpoints joined back to back (client side, server side)."""
    a_to_b = _PipeBuffer()
    b_to_a = _PipeBuffer()
    return (
        LoopbackEndpoint(rx=b_to_a, tx=a_to_b),
        LoopbackEndpoint(rx=a_to_b, tx=b_to_a),
    )


class StreamEndpoint:
    """Adapts an asyncio StreamReader/StreamWriter pair (the TCP path)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    async def read(self, n: int = 65536) -> bytes:
        try:
            return await self._reader.read(n)
        except (ConnectionError, OSError):
            return b""

    def write(self, data: bytes) -> None:
        try:
            self._writer.write(data)
        except (ConnectionError, OSError) as exc:
            raise TransientNetError(f"write failed: {exc}") from exc

    async def drain(self) -> None:
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise TransientNetError(f"drain failed: {exc}") from exc

    def close(self) -> None:
        try:
            self._writer.close()
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass

    @property
    def is_closed(self) -> bool:
        return self._writer.is_closing()

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# Deterministic connection-fault injection
# ----------------------------------------------------------------------
@dataclass
class ConnectionFaultPlan:
    """When this connection misbehaves, counted in outgoing frames.

    The client writes exactly one frame per ``write`` call, so frame
    indices are deterministic.  ``cut_after_frames=k`` kills the
    connection immediately after the k-th outgoing frame (0-based: after
    frame k has been sent); ``corrupt_frames`` lists outgoing frame
    indices whose payload gets one byte XOR-flipped, which the receiver's
    frame CRC catches and converts into a dropped connection.
    """

    cut_after_frames: Optional[int] = None
    corrupt_frames: List[int] = field(default_factory=list)


class FaultyEndpoint:
    """Wraps an endpoint and injects the plan's connection faults."""

    def __init__(self, inner, plan: ConnectionFaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._frames_written = 0
        self._cut = False

    # -- write side (where faults land) --------------------------------
    def write(self, data: bytes) -> None:
        if self._cut:
            raise TransientNetError("connection reset (injected)")
        index = self._frames_written
        self._frames_written += 1
        if index in self._plan.corrupt_frames and len(data) > 8:
            # Flip one payload byte; the 8-byte frame header survives so
            # the receiver sees a well-formed length and a CRC mismatch.
            damaged = bytearray(data)
            damaged[8] ^= 0xFF
            data = bytes(damaged)
        self._inner.write(data)
        if (
            self._plan.cut_after_frames is not None
            and index >= self._plan.cut_after_frames
        ):
            self._cut = True
            self._inner.close()

    async def read(self, n: int = 65536) -> bytes:
        if self._cut:
            return b""
        return await self._inner.read(n)

    async def drain(self) -> None:
        if self._cut:
            raise TransientNetError("connection reset (injected)")
        await self._inner.drain()

    def close(self) -> None:
        self._inner.close()

    @property
    def is_closed(self) -> bool:
        return self._cut or self._inner.is_closed

    async def wait_closed(self) -> None:
        await self._inner.wait_closed()

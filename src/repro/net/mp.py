"""Multiprocessing serving mode: one OS process per shard, made durable.

The loopback :class:`~repro.net.server.KVServer` hosts every shard on one
asyncio event loop — fully deterministic, but one GIL means simulated
throughput never becomes wall-clock throughput.  This module runs the
*same* server, sharded across processes:

* Each **worker process** hosts ``KVServer(config, shard_ids=[i])`` — one
  shard with its global identity (``shardN/`` storage prefix, ``seed+N``
  engine seed), serving the ordinary CRC-framed wire protocol on a
  private TCP port.  Because the worker runs the identical engine with
  the identical seed on its own simulated device, a same-seed workload
  produces byte-identical shard state in both serving modes.
* The **parent** (:class:`ProcessKVServer`) supervises the workers over
  ``multiprocessing`` control pipes (startup handshake, digests,
  simulated clocks, shutdown) and relays client connections: for every
  client connection it lazily opens one TCP connection per shard to the
  workers, introduces the client with a reserved-id HELLO, and forwards
  frames verbatim in both directions.

Worker state is **externalized by log shipping**: before a group commit
is acknowledged, the worker writes a :func:`~repro.net.protocol
.encode_ship_commit` record — the combined batch ops plus the fresh
``(client_id, request_id)`` pairs — to a dedicated one-way pipe, and the
parent appends it to a per-shard durable log in the parent's *own*
:class:`repro.Environment`.  Optionally (``snapshot_interval``) the
worker also ships compact snapshots that let the parent truncate the
log.  Because a record sits in the pipe before any acknowledgement
reaches the client, an acknowledged write survives the worker process.

On top of the log sit three recovery mechanisms:

* **Supervisor** — a heartbeat/deadline loop that detects worker death
  (``is_alive``) or hang (a ``ping`` that misses its deadline), restarts
  the worker with capped deterministic backoff, and replays snapshot +
  log — including the dedup table, so retried writes stay exactly-once
  across the crash.  ``max_consecutive_restarts`` failures inside the
  probation window trip a restart-storm breaker into sticky
  ``DEGRADED`` (mirroring the PR 2 persistent-fault taxonomy); an
  operator's :meth:`ProcessKVServer.resume_shard` clears it.
* **restart_shard** — the manual restart now *restores* the shard from
  the durable log instead of starting empty.
* **handoff_shard** — graceful rolling restart: drain the worker's
  queued commits, shut it down (its final ship records land first),
  replay into a fresh worker, and re-route.  Clients observe only
  transient ``UNAVAILABLE`` retries, never data loss.

A full-log replay re-issues the exact ``write_batch`` sequence the
original worker executed, so the restored engine state is byte-identical
to an uninterrupted run — the differential durability tests assert
exactly that.  Snapshot-truncated replay is a *logical* restore (same
key-value state and dedup table, different physical sstable layout).

Determinism boundary: *within* a shard everything stays deterministic
(its engine, clock, and WAL see the same op sequence either way); what
the process mode gives up is the deterministic *interleaving across
shards* that the single loopback event loop provided.  Workloads that
need cross-shard determinism (the differential tests) drive operations
in a deterministic per-shard order, which both modes preserve.

Workers are started with the ``spawn`` method: forking a process that
already runs an asyncio loop (or threads) is unsafe, and spawn gives
identical semantics on Linux and macOS.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

import repro
from repro.errors import InvalidArgumentError, ReproError
from repro.net.errors import FrameError, TransientNetError
from repro.net.protocol import (
    SHIP_SNAPSHOT,
    FrameDecoder,
    Op,
    Request,
    Response,
    Status,
    decode_payload,
    decode_ship_record,
    decode_varint64,
    encode_frame,
    encode_ship_commit,
    encode_ship_snapshot,
)
from repro.net.server import KVServer, ServerConfig, aggregate_admin
from repro.net.transport import LoopbackEndpoint, StreamEndpoint, loopback_pair
from repro.obs.ledger import IoLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.sim.storage import IoAccount
from repro.wal.log import LogReader, LogWriter

#: Request id the relay reserves for its worker-side HELLO; client ids
#: start at 1 (``ClusterClient._next_request_id``), so it cannot collide.
RELAY_HELLO_ID = 0

#: Shard serving states, parent-side.  ``active`` serves normally (a dead
#: worker still answers UNAVAILABLE until the supervisor notices);
#: ``restarting``/``handoff`` answer UNAVAILABLE — transient, clients
#: retry through them; ``degraded`` is the sticky restart-storm breaker —
#: clients get DEGRADED (not retried) until ``resume_shard``.
SHARD_ACTIVE = "active"
SHARD_RESTARTING = "restarting"
SHARD_HANDOFF = "handoff"
SHARD_DEGRADED = "degraded"

#: Exit code a seeded kill-point uses, so a chaos-killed worker is
#: distinguishable from a real fault in test diagnostics.
KILL_POINT_EXIT = 17


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _CommitShipper:
    """Worker-side replication source: ships commits, applies replays.

    ``seq`` is the shard's commit ordinal.  It survives restarts through
    the replayed records, so the shipped stream stays monotonic across
    worker generations.  Also hosts the seeded kill-point used by the
    chaos tests: :meth:`arm` makes the worker ``os._exit`` at an exact
    group-commit boundary — ``before_ship`` (applied but never
    externalized nor acknowledged) or ``after_ship`` (externalized but
    never acknowledged; the retry must deduplicate).
    """

    def __init__(self, conn, shard, config: ServerConfig) -> None:
        self._conn = conn
        self._shard = shard
        self._config = config
        self.seq = 0
        self._kill_at: Optional[int] = None
        self._kill_mode = "after_ship"

    def arm(self, after_commits: int, mode: str) -> None:
        self._kill_at = self.seq + max(1, after_commits)
        self._kill_mode = mode

    def on_commit(self, ops: list, ids: List[Tuple[int, int]]) -> None:
        self.seq += 1
        dying = self._kill_at is not None and self.seq >= self._kill_at
        if dying and self._kill_mode == "before_ship":
            os._exit(KILL_POINT_EXIT)  # applied, never shipped, never acked
        self._ship(encode_ship_commit(self.seq, ids, ops))
        if dying:
            os._exit(KILL_POINT_EXIT)  # shipped, never acked: dedup territory
        interval = self._config.snapshot_interval
        if interval and self.seq % interval == 0:
            pairs, dedup = self._shard.export_snapshot()
            self._ship(encode_ship_snapshot(self.seq, pairs, dedup))

    def _ship(self, record: bytes) -> None:
        try:
            self._conn.send_bytes(record)
        except (BrokenPipeError, OSError):
            pass  # parent gone; the control-pipe EOF shuts us down next

    def replay(self, snapshot: Optional[bytes], records: List[bytes]):
        """Apply snapshot + commit records; returns (records, ops, bytes)."""
        applied_records = applied_ops = total_bytes = 0
        if snapshot is not None:
            record = decode_ship_record(snapshot)
            self._shard.restore_snapshot(record.pairs, record.dedup)
            self.seq = record.seq
            total_bytes += len(snapshot)
        for raw in records:
            record = decode_ship_record(raw)
            self._shard.apply_shipped_commit(record.ops, record.ids)
            self.seq = record.seq
            applied_records += 1
            applied_ops += len(record.ops)
            total_bytes += len(raw)
        return applied_records, applied_ops, total_bytes


def _shard_worker_main(conn, ship_conn, config: ServerConfig, shard_id: int) -> None:
    """Entry point of one shard worker (runs in the spawned process)."""
    try:
        asyncio.run(_shard_worker(conn, ship_conn, config, shard_id))
    except KeyboardInterrupt:  # pragma: no cover - operator interrupt
        pass
    finally:
        conn.close()
        ship_conn.close()


async def _shard_worker(conn, ship_conn, config: ServerConfig, shard_id: int) -> None:
    server = KVServer(config, shard_ids=[shard_id])
    shipper = _CommitShipper(ship_conn, server.shards[0], config)
    if config.ship_log:
        server.shards[0].on_commit = shipper.on_commit
    await server.serve_tcp("127.0.0.1", 0)
    loop = asyncio.get_running_loop()
    conn.send(("ready", server.tcp_address[1]))
    try:
        while True:
            try:
                message = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                break  # parent died or closed the pipe; shut down
            cmd = message[0]
            if cmd == "shutdown":
                break
            elif cmd == "digest":
                await server.wait_idle()
                conn.send(("digest", server.state_digests()[0]))
            elif cmd == "sim_time":
                conn.send(("sim_time", server.shard_sim_times()[0]))
            elif cmd == "totals":
                conn.send(("totals", server.total_ops(), server.protocol_errors))
            elif cmd == "metrics":
                conn.send(("metrics", server.metrics_text()))
            elif cmd == "admin":
                # Raw per-shard admin parts (everything in them pickles);
                # the parent aggregates with the same function loopback
                # mode uses, so both modes expose identical sections.
                conn.send(("admin", server._admin_parts()))
            elif cmd == "wait_idle":
                await server.wait_idle()
                conn.send(("idle",))
            elif cmd == "ping":
                conn.send(("pong",))
            elif cmd == "replay":
                stats = shipper.replay(message[1], message[2])
                await server.wait_idle()
                conn.send(("replayed",) + stats)
            elif cmd == "arm_kill":
                shipper.arm(message[1], message[2])
                conn.send(("armed",))
            elif cmd == "hang":
                # Test hook: stop answering control traffic (the event
                # loop keeps serving) so the supervisor's ping deadline
                # can observe a hung worker.
                conn.send(("hanging",))
                await asyncio.sleep(message[1])
            else:  # pragma: no cover - protocol drift guard
                conn.send(("error", f"unknown control command {cmd!r}"))
    finally:
        await server.aclose()
    try:
        conn.send(("bye",))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


class _WorkerHandle:
    """Parent-side handle: process, control pipe, serving port."""

    def __init__(self, shard_id: int, process, conn, port: int) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.port = port
        #: Serializes control-pipe round-trips (they may run on executor
        #: threads, so this is a *thread* lock, not an asyncio one).
        self.lock = threading.Lock()
        #: Set by the ship drainer once the worker's replication stream
        #: is fully consumed (EOF after the process exited) — restarts
        #: wait on it so no shipped record is lost to a race.
        self.drained = threading.Event()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def call(self, *message, timeout: Optional[float] = None):
        """One control round-trip; raises TransientNetError when dead.

        With ``timeout``, a worker that does not answer inside the
        deadline raises too — the hung-worker case the supervisor kills.
        """
        with self.lock:
            if not self.alive:
                raise TransientNetError(
                    f"shard {self.shard_id} worker is not running"
                )
            try:
                self.conn.send(message)
                if timeout is not None and not self.conn.poll(timeout):
                    raise TransientNetError(
                        f"shard {self.shard_id} control call {message[0]!r} "
                        f"timed out after {timeout}s"
                    )
                return self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise TransientNetError(
                    f"shard {self.shard_id} worker control pipe failed: {exc}"
                ) from exc

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop with escalation, never leaking the worker.

        Shutdown message → join; still alive → ``terminate()`` (SIGTERM)
        → join; still alive → ``kill()`` (SIGKILL) → join.  The control
        pipe is closed unconditionally, so a worker that ignores every
        signal still cannot leak descriptors into later tests.
        """
        with self.lock:
            try:
                if self.alive:
                    try:
                        self.conn.send(("shutdown",))
                    except (BrokenPipeError, OSError):
                        pass
                self.process.join(timeout)
                if self.alive:
                    self.process.terminate()
                    self.process.join(timeout)
                if self.alive:  # pragma: no cover - SIGTERM ignored
                    self.process.kill()
                    self.process.join(timeout)
            finally:
                self.conn.close()


# ----------------------------------------------------------------------
# Parent: supervisor + relay
# ----------------------------------------------------------------------
class ProcessKVServer:
    """KVServer-shaped frontend over one worker process per shard.

    Duck-types the :class:`~repro.net.server.KVServer` surface the
    clients, benchmarks, and tests use (``connect_loopback``,
    ``serve_tcp``, ``wait_idle``, ``aclose``, ``state_digests``,
    ``total_ops``, ``sim_now``, ...), so :class:`ClusterClient` and
    :class:`BlockingClusterClient` work unchanged against it.

    Introspection calls are control-pipe round-trips to the workers;
    they are synchronous and intended for test/benchmark checkpoints,
    not the data path.  The data path is the relay: frames go to the
    worker that owns the shard, responses stream straight back.

    Durability plumbing: every worker ships acknowledged commits over a
    dedicated pipe; a per-worker drainer thread appends them to the
    shard's durable log in :attr:`env` (the parent's own simulated
    Environment); the supervisor thread restarts dead/hung workers and
    replays the log.  :attr:`registry` exposes restart counts, heartbeat
    misses, ship/replay volumes, and handoff durations.
    """

    def __init__(self, config: Optional[ServerConfig] = None, **overrides) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise InvalidArgumentError("pass either a config or overrides, not both")
        self.config = config
        self.router = config.make_router()
        if self.router.num_shards != config.shards:
            raise InvalidArgumentError(
                f"{config.shards} shards need {config.shards - 1} boundaries, "
                f"got {self.router.num_shards - 1}"
            )
        #: Frames from clients that failed CRC/format checks at the relay.
        self.protocol_errors = 0
        #: Parent-side observability (supervisor/ship/replay/handoff).
        self.registry = MetricsRegistry()
        #: (shard_id, time.monotonic()) per completed restart — the
        #: availability benchmark derives time-to-recover from these.
        self.restart_events: List[Tuple[int, float]] = []
        #: The parent's own Environment: home of the durable ship logs.
        self.env = repro.Environment(cache_bytes=1 << 20)
        #: Parent-side flight recorder: supervisor events (heartbeat
        #: misses, restarts, breaker trips) land in its ring, and a
        #: supervised restart or breaker trip dumps it — a SIGKILLed
        #: worker cannot dump its own recorder, so the parent's is the
        #: one that survives to explain what happened.
        self.recorder = FlightRecorder(
            component="supervisor",
            seed=config.seed,
            clock=self.env.clock,
            mode="errors",
            dump_dir=config.trace_dump_dir,
        )
        self._log_lock = threading.Lock()
        self._log_account = IoAccount("shiplog", self.env.clock)
        self._log_writers: Dict[int, LogWriter] = {}
        self._kill_plans: Dict[int, Tuple[int, str]] = {}
        self._shard_states: List[str] = [SHARD_ACTIVE] * config.shards
        self._shard_locks = [threading.Lock() for _ in range(config.shards)]
        self._consecutive_failures = [0] * config.shards
        self._last_restart = [0.0] * config.shards
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[_WorkerHandle] = [
            self._spawn_worker(i) for i in range(config.shards)
        ]
        self._next_anonymous_client = 1
        self._connection_tasks: "Set[asyncio.Task]" = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        self._supervisor: Optional[threading.Thread] = None
        if config.supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-supervisor", daemon=True
            )
            self._supervisor.start()

    def _spawn_worker(self, shard_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        ship_recv, ship_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, ship_send, self.config, shard_id),
            name=f"repro-shard{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        ship_send.close()
        tag, port = parent_conn.recv()  # startup handshake
        assert tag == "ready", f"worker {shard_id} bad handshake: {tag}"
        handle = _WorkerHandle(shard_id, process, parent_conn, port)
        threading.Thread(
            target=self._drain_ship,
            args=(shard_id, ship_recv, handle.drained),
            name=f"repro-ship{shard_id}",
            daemon=True,
        ).start()
        plan = self._kill_plans.get(shard_id)
        if plan is not None:
            handle.call("arm_kill", plan[0], plan[1])
        return handle

    # ------------------------------------------------------------------
    # Durable ship log (parent Environment)
    # ------------------------------------------------------------------
    def _log_name(self, shard_id: int) -> str:
        return f"shard{shard_id}/ship.log"

    def _snap_name(self, shard_id: int) -> str:
        return f"shard{shard_id}/ship.snap"

    def _drain_ship(self, shard_id: int, ship_conn, drained: threading.Event) -> None:
        """Per-worker drainer thread: pipe records → durable log."""
        try:
            while True:
                try:
                    record = ship_conn.recv_bytes()
                except (EOFError, OSError):
                    break  # worker exited; every buffered record was read
                self._append_ship(shard_id, record)
        finally:
            try:
                ship_conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            drained.set()

    def _append_ship(self, shard_id: int, record: bytes) -> None:
        with self._log_lock:
            storage = self.env.storage
            if record and record[0] == SHIP_SNAPSHOT:
                # A snapshot supersedes everything shipped before it:
                # persist it, then truncate the commit log.
                snap = self._snap_name(shard_id)
                if storage.exists(snap):
                    storage.delete(snap)
                LogWriter(storage, snap).append(
                    record, self._log_account, sync=True
                )
                log = self._log_name(shard_id)
                if storage.exists(log):
                    storage.delete(log)
                self._log_writers[shard_id] = LogWriter(storage, log)
            else:
                writer = self._log_writers.get(shard_id)
                if writer is None:
                    writer = LogWriter(storage, self._log_name(shard_id))
                    self._log_writers[shard_id] = writer
                writer.append(record, self._log_account, sync=True)
            self.registry.counter("shiplog.records", shard=shard_id).inc()
            self.registry.counter("shiplog.bytes", shard=shard_id).inc(len(record))

    def _read_ship_log(self, shard_id: int) -> Tuple[Optional[bytes], List[bytes]]:
        with self._log_lock:
            storage = self.env.storage
            snapshot: Optional[bytes] = None
            snap = self._snap_name(shard_id)
            if storage.exists(snap):
                for payload in LogReader(storage, snap).records(self._log_account):
                    snapshot = payload
            records: List[bytes] = []
            log = self._log_name(shard_id)
            if storage.exists(log):
                records = list(
                    LogReader(storage, log).records(self._log_account)
                )
            return snapshot, records

    def shiplog_sizes(self) -> List[Tuple[int, int]]:
        """Per-shard (snapshot bytes, log bytes) on the parent's storage."""
        with self._log_lock:
            storage = self.env.storage
            sizes = []
            for shard_id in range(self.config.shards):
                snap, log = self._snap_name(shard_id), self._log_name(shard_id)
                sizes.append(
                    (
                        storage.size(snap) if storage.exists(snap) else 0,
                        storage.size(log) if storage.exists(log) else 0,
                    )
                )
            return sizes

    def _replay_into(self, shard_id: int, handle: _WorkerHandle) -> None:
        snapshot, records = self._read_ship_log(shard_id)
        if snapshot is None and not records:
            return
        reply = handle.call("replay", snapshot, records)
        assert reply[0] == "replayed", f"bad replay reply: {reply[0]}"
        _, nrecords, nops, nbytes = reply
        self.registry.counter("replay.records", shard=shard_id).inc(nrecords)
        self.registry.counter("replay.ops", shard=shard_id).inc(nops)
        self.registry.counter("replay.bytes", shard=shard_id).inc(nbytes)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    @property
    def worker_ports(self) -> List[int]:
        """Each shard worker's TCP port (benchmark drivers connect direct)."""
        return [worker.port for worker in self._workers]

    def worker_alive(self, shard_id: int) -> bool:
        return self._workers[shard_id].alive

    def shard_state(self, shard_id: int) -> str:
        """The shard's serving state (active/restarting/handoff/degraded)."""
        return self._shard_states[shard_id]

    def arm_worker_kill(
        self,
        shard_id: int,
        after_commits: int = 1,
        mode: str = "after_ship",
        *,
        repeat: bool = False,
    ) -> None:
        """Chaos hook: make the worker die at a group-commit boundary.

        ``mode`` picks the crash point relative to log shipping (see
        :class:`_CommitShipper`); ``repeat`` re-arms every restarted
        worker — the restart-storm scenario that trips the breaker.
        """
        if mode not in ("before_ship", "after_ship"):
            raise InvalidArgumentError(f"unknown kill mode {mode!r}")
        if repeat:
            self._kill_plans[shard_id] = (after_commits, mode)
        self._workers[shard_id].call("arm_kill", after_commits, mode)

    def clear_worker_kill(self, shard_id: int) -> None:
        self._kill_plans.pop(shard_id, None)

    def _ping_worker(self, handle: _WorkerHandle) -> bool:
        """True when the worker answered (or is busy answering someone)."""
        if not handle.lock.acquire(blocking=False):
            return True  # a control call is mid-flight: the pipe is live
        try:
            if not handle.process.is_alive():
                return False
            try:
                handle.conn.send(("ping",))
                if handle.conn.poll(self.config.heartbeat_timeout):
                    handle.conn.recv()
                    return True
                # Deadline missed.  A late pong would desynchronize the
                # pipe, but the caller kills the worker for exactly this
                # case, so the pipe dies with it.
                return False
            except (EOFError, BrokenPipeError, OSError):
                return False
        finally:
            handle.lock.release()

    def _supervise(self) -> None:
        """Heartbeat loop: detect death/hang, restart, trip the breaker."""
        config = self.config
        probation = max(config.restart_probation, 2 * config.heartbeat_interval)
        while not self._closed:
            time.sleep(config.heartbeat_interval)
            for shard_id in range(config.shards):
                if self._closed:
                    return
                if self._shard_states[shard_id] != SHARD_ACTIVE:
                    continue
                handle = self._workers[shard_id]
                if handle.process.is_alive():
                    if self._ping_worker(handle):
                        if (
                            self._consecutive_failures[shard_id]
                            and time.monotonic() - self._last_restart[shard_id]
                            > probation
                        ):
                            self._consecutive_failures[shard_id] = 0
                        continue
                    # Hung: missed the ping deadline → kill, restart below.
                    self.registry.counter(
                        "supervisor.heartbeat_misses", shard=shard_id
                    ).inc()
                    self.recorder.point(
                        "supervisor.heartbeat_miss", shard=shard_id
                    )
                    handle.process.kill()
                    handle.process.join(config.heartbeat_timeout)
                else:
                    self.recorder.point(
                        "supervisor.worker_death",
                        shard=shard_id,
                        exitcode=handle.process.exitcode,
                    )
                try:
                    self._supervised_restart(shard_id)
                except ReproError:
                    # Spawn/replay failed; count it and let the next tick
                    # retry (or trip the breaker).
                    self._consecutive_failures[shard_id] += 1

    def _supervised_restart(self, shard_id: int) -> None:
        failures = self._consecutive_failures[shard_id]
        if failures >= self.config.max_consecutive_restarts:
            # Restart storm: breaker trips into sticky DEGRADED.
            self._shard_states[shard_id] = SHARD_DEGRADED
            self.registry.counter(
                "supervisor.breaker_trips", shard=shard_id
            ).inc()
            self.recorder.point(
                "supervisor.breaker_trip", shard=shard_id, failures=failures
            )
            self.recorder.dump(f"breaker-trip:shard{shard_id}")
            return
        delay = min(
            self.config.restart_backoff_base * (2 ** failures),
            self.config.restart_backoff_max,
        )
        time.sleep(delay)
        if self._closed:
            return
        self._consecutive_failures[shard_id] = failures + 1
        self._last_restart[shard_id] = time.monotonic()
        self.restart_shard(shard_id)
        self.recorder.point(
            "supervisor.restart", shard=shard_id, attempt=failures + 1
        )
        self.recorder.dump(f"worker-restart:shard{shard_id}")

    def restart_shard(self, shard_id: int, *, replay: bool = True) -> None:
        """Replace a (dead or live) worker and restore the shard's state.

        The replacement replays the durable ship log (newest snapshot +
        commit records) before it is routed to, so every acknowledged
        write — and the dedup table that keeps retries exactly-once —
        survives the old process.  ``replay=False`` restores the PR 6
        start-empty behaviour for tests that want a genuinely fresh
        shard.
        """
        with self._shard_locks[shard_id]:
            previous = self._shard_states[shard_id]
            self._shard_states[shard_id] = SHARD_RESTARTING
            try:
                old = self._workers[shard_id]
                old.shutdown(timeout=2.0)
                old.drained.wait(timeout=10.0)
                handle = self._spawn_worker(shard_id)
                if replay and self.config.ship_log:
                    self._replay_into(shard_id, handle)
                self._workers[shard_id] = handle
                self._shard_states[shard_id] = SHARD_ACTIVE
            except BaseException:
                # Leave the previous state so the supervisor (or the
                # operator) can try again; the breaker counts the miss.
                self._shard_states[shard_id] = previous
                raise
        self.registry.counter("supervisor.restarts", shard=shard_id).inc()
        self.restart_events.append((shard_id, time.monotonic()))

    def resume_shard(self, shard_id: int) -> None:
        """Operator override: clear the restart-storm breaker and bring
        the shard back (replayed from the durable log)."""
        self._consecutive_failures[shard_id] = 0
        self.restart_shard(shard_id)

    def handoff_shard(self, shard_id: int) -> float:
        """Graceful rolling restart: drain → transfer → re-route.

        Queued group commits finish (their ship records land before the
        worker acknowledges the drain), the worker shuts down cleanly,
        a fresh worker replays the durable log, and the route flips to
        it.  In between, the shard answers ``UNAVAILABLE`` — a transient
        status clients retry through — so the rolling restart loses no
        acknowledged write and surfaces no permanent error.  Returns the
        handoff duration in seconds.
        """
        start = time.monotonic()
        with self._shard_locks[shard_id]:
            state = self._shard_states[shard_id]
            if state != SHARD_ACTIVE:
                raise InvalidArgumentError(
                    f"cannot hand off shard {shard_id} while {state}"
                )
            self._shard_states[shard_id] = SHARD_HANDOFF
            try:
                old = self._workers[shard_id]
                if old.alive:
                    try:
                        old.call("wait_idle", timeout=30.0)  # drain commits
                    except TransientNetError:
                        pass  # died mid-drain; the ship log still has it all
                old.shutdown(timeout=5.0)
                old.drained.wait(timeout=10.0)
                handle = self._spawn_worker(shard_id)  # transfer
                if self.config.ship_log:
                    self._replay_into(shard_id, handle)
                self._workers[shard_id] = handle  # re-route
                self._consecutive_failures[shard_id] = 0
            finally:
                self._shard_states[shard_id] = SHARD_ACTIVE
        duration = time.monotonic() - start
        self.registry.counter("handoff.count", shard=shard_id).inc()
        self.registry.gauge("handoff.last_seconds", shard=shard_id).set(
            round(duration, 6)
        )
        return duration

    # ------------------------------------------------------------------
    # Connection plumbing (mirrors KVServer)
    # ------------------------------------------------------------------
    def connect_loopback(self) -> LoopbackEndpoint:
        """A client endpoint relayed in-process to the shard workers."""
        client_side, server_side = loopback_pair()
        task = asyncio.ensure_future(self.handle_connection(server_side))
        self._connection_tasks.add(task)
        task.add_done_callback(self._connection_tasks.discard)
        return client_side

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        async def on_client(reader, writer):
            task = asyncio.current_task()
            if task is not None:
                self._connection_tasks.add(task)
                task.add_done_callback(self._connection_tasks.discard)
            try:
                await self.handle_connection(StreamEndpoint(reader, writer))
            except asyncio.CancelledError:
                pass

        self._tcp_server = await asyncio.start_server(on_client, host, port)
        return self._tcp_server

    @property
    def tcp_address(self) -> Tuple[str, int]:
        assert self._tcp_server is not None, "serve_tcp was not called"
        sock = self._tcp_server.sockets[0]
        address = sock.getsockname()
        return address[0], address[1]

    async def handle_connection(self, endpoint) -> None:
        """Relay one client connection to the shard workers."""
        relay = _ConnectionRelay(self, endpoint)
        try:
            await relay.run()
        finally:
            await relay.aclose()
            endpoint.close()

    def _assign_client_id(self, requested: int) -> int:
        if requested != 0:
            return requested
        client_id = self._next_anonymous_client
        self._next_anonymous_client += 1
        return client_id

    # ------------------------------------------------------------------
    # Introspection (control-pipe round-trips)
    # ------------------------------------------------------------------
    def state_digests(self) -> List[str]:
        """Per-shard on-storage digests, gathered from the workers."""
        return [worker.call("digest")[1] for worker in self._workers]

    def shard_sim_times(self) -> List[float]:
        return [worker.call("sim_time")[1] for worker in self._workers]

    def sim_now(self) -> float:
        return max(self.shard_sim_times())

    def total_ops(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for worker in self._workers:
            _, ops, _proto = worker.call("totals")
            for name, value in ops.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def worker_protocol_errors(self) -> int:
        """Bad frames seen by the workers (the CI smoke asserts 0)."""
        return sum(worker.call("totals")[2] for worker in self._workers)

    def metrics_text(self) -> str:
        """Cluster exposition: worker shards first, then the parent's
        supervisor/ship/replay registry.  Dead workers are skipped."""
        texts = []
        for worker in self._workers:
            try:
                texts.append(worker.call("metrics")[1])
            except TransientNetError:
                continue
        texts.append(self.registry.to_text())
        return "\n".join(texts)

    def _admin_parts(self) -> List[Dict[str, object]]:
        """Per-shard admin parts, gathered over the control pipes.

        The worker ships the exact structure ``KVServer._admin_parts``
        builds; the parent overlays its own view of the shard state and
        substitutes an empty stub for dead/unreachable workers so the
        health section still reports the shard (as restarting/degraded)
        instead of silently dropping it.
        """
        parts: List[Dict[str, object]] = []
        for shard_id, worker in enumerate(self._workers):
            try:
                worker_parts = worker.call("admin", timeout=30.0)[1]
            except TransientNetError:
                parts.append(
                    {
                        "shard": shard_id,
                        "state": self._shard_states[shard_id],
                        "registry": None,
                        "health": "",
                        "ops": {},
                        "ledger": IoLedger().to_dict(),
                        "windows": {},
                    }
                )
                continue
            for part in worker_parts:
                part["state"] = self._shard_states[shard_id]
                parts.append(part)
        return parts

    def admin_text(self, section: str) -> Optional[str]:
        """One aggregated admin section (``Op.ADMIN``); None if unknown.

        Same aggregation as the loopback :class:`KVServer`, plus the
        parent's supervisor registry and the ship-log ledger of the
        parent's own Environment — with ``ship_log`` and ``supervise``
        off those contribute nothing, so a same-seed cluster answers
        identically in both serving modes.
        """
        return aggregate_admin(
            section,
            self._admin_parts(),
            parent_registry=self.registry,
            parent_ledger=IoLedger.from_storage(self.env.storage),
        )

    async def wait_idle(self) -> None:
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            if worker.alive:
                await loop.run_in_executor(None, worker.call, "wait_idle")

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self._supervisor.join, 15.0
            )
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.shutdown)

    def close(self) -> None:
        """Synchronous close for callers outside an event loop."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.join(15.0)
        for worker in self._workers:
            worker.shutdown()


class _ConnectionRelay:
    """Relays one client connection: frames out to workers, back in.

    One worker TCP connection is opened lazily per shard *per client
    connection* — request ids are only unique within a client, so
    multiplexing different clients onto one worker connection would
    collide them.  The relay introduces the client to each worker with
    a HELLO carrying the reserved :data:`RELAY_HELLO_ID`; the pump task
    filters that response out of the backward stream and forwards every
    other frame verbatim (no re-encode, no second CRC check — the frame
    was already verified at the relay's decoder).
    """

    def __init__(self, server: ProcessKVServer, endpoint) -> None:
        self._server = server
        self._endpoint = endpoint
        self._client_id = 0
        self._worker_endpoints: Dict[int, StreamEndpoint] = {}
        self._pumps: Dict[int, asyncio.Task] = {}
        #: Request ids forwarded to each shard and not yet answered; on a
        #: worker drop each one gets an UNAVAILABLE response instead of
        #: hanging the client's pipelined future forever.
        self._pending: Dict[int, Set[int]] = {}

    async def run(self) -> None:
        decoder = FrameDecoder()
        while True:
            chunk = await self._endpoint.read(65536)
            if not chunk:
                break
            try:
                decoder.feed(chunk)
                while True:
                    payload = decoder.next_frame()
                    if payload is None:
                        break
                    await self._relay_frame(payload)
            except FrameError:
                self._server.protocol_errors += 1
                break

    async def _relay_frame(self, payload: bytes) -> None:
        message = decode_payload(payload)
        if not isinstance(message, Request):
            raise FrameError("client sent a response payload")
        if message.op == Op.HELLO:
            self._client_id = self._server._assign_client_id(message.client_id)
            router = self._server.router
            self._send(
                Response(
                    request_id=message.request_id,
                    status=Status.OK,
                    client_id=self._client_id,
                    shard_count=router.num_shards,
                    boundaries=list(router.boundaries),
                )
            )
            return
        if message.op == Op.ADMIN:
            # Admin is cluster-wide, never shard-routed: the parent
            # aggregates over every worker (control-pipe round-trips
            # block, so run them off the event loop).
            loop = asyncio.get_running_loop()
            text = await loop.run_in_executor(
                None, self._server.admin_text, message.name
            )
            self._send(
                Response(
                    request_id=message.request_id,
                    status=Status.OK,
                    found=text is not None,
                    value=(text or "").encode("utf-8"),
                )
            )
            return
        shard = message.shard
        if not 0 <= shard < self._server.config.shards:
            self._send(
                Response(
                    request_id=message.request_id,
                    status=Status.BAD_SHARD,
                    message=f"no shard {shard} "
                    f"(have {self._server.config.shards})",
                )
            )
            return
        state = self._server.shard_state(shard)
        if state == SHARD_DEGRADED:
            # Restart-storm breaker: sticky, not worth retrying — the
            # client maps this onto ShardDegradedError immediately.
            self._send(
                Response(
                    request_id=message.request_id,
                    status=Status.DEGRADED,
                    message=(
                        f"shard {shard} breaker open after repeated worker "
                        "crashes; resume_shard() to re-enable"
                    ),
                )
            )
            return
        if state != SHARD_ACTIVE:
            # Restarting or handing off: transient, clients retry through.
            self._send(self._unavailable(message.request_id, shard))
            return
        worker_endpoint = self._worker_endpoints.get(shard)
        if worker_endpoint is None:
            worker_endpoint = await self._open_worker(shard)
            if worker_endpoint is None:
                self._send(self._unavailable(message.request_id, shard))
                return
        self._pending.setdefault(shard, set()).add(message.request_id)
        try:
            worker_endpoint.write(encode_frame(payload))
            await worker_endpoint.drain()
        except TransientNetError:
            # The pump task notices the drop and fails the pending set
            # (including this id) with UNAVAILABLE.
            pass

    async def _open_worker(self, shard: int) -> Optional[StreamEndpoint]:
        if not self._server.worker_alive(shard):
            return None
        port = self._server._workers[shard].port
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
        except (ConnectionError, OSError):
            return None
        worker_endpoint = StreamEndpoint(reader, writer)
        hello = Request(
            op=Op.HELLO, request_id=RELAY_HELLO_ID, client_id=self._client_id
        )
        try:
            worker_endpoint.write(encode_frame(hello.encode()))
            await worker_endpoint.drain()
        except TransientNetError:
            worker_endpoint.close()
            return None
        self._worker_endpoints[shard] = worker_endpoint
        self._pumps[shard] = asyncio.ensure_future(
            self._pump(shard, worker_endpoint)
        )
        return worker_endpoint

    async def _pump(self, shard: int, worker_endpoint: StreamEndpoint) -> None:
        """Forward worker → client frames, filtering the relay HELLO."""
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await worker_endpoint.read(65536)
                if not chunk:
                    break
                decoder.feed(chunk)
                while True:
                    payload = decoder.next_frame()
                    if payload is None:
                        break
                    request_id, _ = decode_varint64(payload, 1)
                    if payload[0] == Op.RESPONSE and request_id == RELAY_HELLO_ID:
                        continue  # the relay's own HELLO answer
                    pending = self._pending.get(shard)
                    if pending is not None:
                        pending.discard(request_id)
                    try:
                        self._endpoint.write(encode_frame(payload))
                        await self._endpoint.drain()
                    except TransientNetError:
                        return  # client gone; run() will wind down
        except (FrameError, TransientNetError, OSError):
            pass  # treated as a worker drop below
        finally:
            self._worker_endpoints.pop(shard, None)
            worker_endpoint.close()
            self._fail_pending(shard)

    def _fail_pending(self, shard: int) -> None:
        pending = self._pending.pop(shard, None)
        if not pending:
            return
        for request_id in sorted(pending):
            try:
                self._send(self._unavailable(request_id, shard))
            except TransientNetError:  # pragma: no cover - client gone too
                break

    def _unavailable(self, request_id: int, shard: int) -> Response:
        return Response(
            request_id=request_id,
            status=Status.UNAVAILABLE,
            message=f"shard {shard} worker is not running",
        )

    def _send(self, response: Response) -> None:
        self._endpoint.write(encode_frame(response.encode()))

    async def aclose(self) -> None:
        for task in list(self._pumps.values()):
            task.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()
        for worker_endpoint in list(self._worker_endpoints.values()):
            worker_endpoint.close()
        self._worker_endpoints.clear()


def make_server(config: Optional[ServerConfig] = None, *, serving_mode: str = "loopback", **overrides):
    """Build the server for a serving mode: KVServer or ProcessKVServer.

    ``"loopback"`` is the deterministic single-process asyncio server;
    ``"process"`` spawns one worker process per shard and relays.  Both
    accept the same config/overrides and serve the same protocol.
    """
    if serving_mode == "loopback":
        return KVServer(config, **overrides)
    if serving_mode == "process":
        return ProcessKVServer(config, **overrides)
    raise InvalidArgumentError(
        f"unknown serving_mode {serving_mode!r} (use 'loopback' or 'process')"
    )

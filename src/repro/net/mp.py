"""Multiprocessing serving mode: one OS process per shard.

The loopback :class:`~repro.net.server.KVServer` hosts every shard on one
asyncio event loop — fully deterministic, but one GIL means simulated
throughput never becomes wall-clock throughput.  This module runs the
*same* server, sharded across processes:

* Each **worker process** hosts ``KVServer(config, shard_ids=[i])`` — one
  shard with its global identity (``shardN/`` storage prefix, ``seed+N``
  engine seed), serving the ordinary CRC-framed wire protocol on a
  private TCP port.  Because the worker runs the identical engine with
  the identical seed on its own simulated device, a same-seed workload
  produces byte-identical shard state in both serving modes.
* The **parent** (:class:`ProcessKVServer`) supervises the workers over
  ``multiprocessing`` control pipes (startup handshake, digests,
  simulated clocks, shutdown) and relays client connections: for every
  client connection it lazily opens one TCP connection per shard to the
  workers, introduces the client with a reserved-id HELLO, and forwards
  frames verbatim in both directions.  Requests to a dead worker answer
  ``UNAVAILABLE`` — a transient status the client retries — and
  :meth:`ProcessKVServer.restart_shard` brings up a fresh worker.

Determinism boundary: *within* a shard everything stays deterministic
(its engine, clock, and WAL see the same op sequence either way); what
the process mode gives up is the deterministic *interleaving across
shards* that the single loopback event loop provided.  Workloads that
need cross-shard determinism (the differential tests) drive operations
in a deterministic per-shard order, which both modes preserve.

Workers are started with the ``spawn`` method: forking a process that
already runs an asyncio loop (or threads) is unsafe, and spawn gives
identical semantics on Linux and macOS.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvalidArgumentError
from repro.net.errors import FrameError, TransientNetError
from repro.net.protocol import (
    FrameDecoder,
    Op,
    Request,
    Response,
    Status,
    decode_payload,
    decode_varint64,
    encode_frame,
)
from repro.net.server import KVServer, ServerConfig
from repro.net.transport import LoopbackEndpoint, StreamEndpoint, loopback_pair

#: Request id the relay reserves for its worker-side HELLO; client ids
#: start at 1 (``ClusterClient._next_request_id``), so it cannot collide.
RELAY_HELLO_ID = 0


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _shard_worker_main(conn, config: ServerConfig, shard_id: int) -> None:
    """Entry point of one shard worker (runs in the spawned process)."""
    try:
        asyncio.run(_shard_worker(conn, config, shard_id))
    except KeyboardInterrupt:  # pragma: no cover - operator interrupt
        pass
    finally:
        conn.close()


async def _shard_worker(conn, config: ServerConfig, shard_id: int) -> None:
    server = KVServer(config, shard_ids=[shard_id])
    await server.serve_tcp("127.0.0.1", 0)
    loop = asyncio.get_running_loop()
    conn.send(("ready", server.tcp_address[1]))
    try:
        while True:
            try:
                message = await loop.run_in_executor(None, conn.recv)
            except (EOFError, OSError):
                break  # parent died or closed the pipe; shut down
            cmd = message[0]
            if cmd == "shutdown":
                break
            elif cmd == "digest":
                await server.wait_idle()
                conn.send(("digest", server.state_digests()[0]))
            elif cmd == "sim_time":
                conn.send(("sim_time", server.shard_sim_times()[0]))
            elif cmd == "totals":
                conn.send(("totals", server.total_ops(), server.protocol_errors))
            elif cmd == "metrics":
                conn.send(("metrics", server.metrics_text()))
            elif cmd == "wait_idle":
                await server.wait_idle()
                conn.send(("idle",))
            else:  # pragma: no cover - protocol drift guard
                conn.send(("error", f"unknown control command {cmd!r}"))
    finally:
        await server.aclose()
    try:
        conn.send(("bye",))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


class _WorkerHandle:
    """Parent-side handle: process, control pipe, serving port."""

    def __init__(self, shard_id: int, process, conn, port: int) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.port = port
        #: Serializes control-pipe round-trips (they may run on executor
        #: threads, so this is a *thread* lock, not an asyncio one).
        self.lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def call(self, *message):
        """One control round-trip; raises TransientNetError when dead."""
        with self.lock:
            if not self.alive:
                raise TransientNetError(
                    f"shard {self.shard_id} worker is not running"
                )
            try:
                self.conn.send(message)
                return self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise TransientNetError(
                    f"shard {self.shard_id} worker control pipe failed: {exc}"
                ) from exc

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: shutdown message, join, escalate to kill."""
        with self.lock:
            if self.alive:
                try:
                    self.conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
            self.process.join(timeout)
            if self.alive:  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.join(timeout)
            self.conn.close()


# ----------------------------------------------------------------------
# Parent: supervisor + relay
# ----------------------------------------------------------------------
class ProcessKVServer:
    """KVServer-shaped frontend over one worker process per shard.

    Duck-types the :class:`~repro.net.server.KVServer` surface the
    clients, benchmarks, and tests use (``connect_loopback``,
    ``serve_tcp``, ``wait_idle``, ``aclose``, ``state_digests``,
    ``total_ops``, ``sim_now``, ...), so :class:`ClusterClient` and
    :class:`BlockingClusterClient` work unchanged against it.

    Introspection calls are control-pipe round-trips to the workers;
    they are synchronous and intended for test/benchmark checkpoints,
    not the data path.  The data path is the relay: frames go to the
    worker that owns the shard, responses stream straight back.
    """

    def __init__(self, config: Optional[ServerConfig] = None, **overrides) -> None:
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise InvalidArgumentError("pass either a config or overrides, not both")
        self.config = config
        self.router = config.make_router()
        if self.router.num_shards != config.shards:
            raise InvalidArgumentError(
                f"{config.shards} shards need {config.shards - 1} boundaries, "
                f"got {self.router.num_shards - 1}"
            )
        #: Frames from clients that failed CRC/format checks at the relay.
        self.protocol_errors = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[_WorkerHandle] = [
            self._spawn_worker(i) for i in range(config.shards)
        ]
        self._next_anonymous_client = 1
        self._connection_tasks: "Set[asyncio.Task]" = set()
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._closed = False

    def _spawn_worker(self, shard_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.config, shard_id),
            name=f"repro-shard{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        tag, port = parent_conn.recv()  # startup handshake
        assert tag == "ready", f"worker {shard_id} bad handshake: {tag}"
        return _WorkerHandle(shard_id, process, parent_conn, port)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    @property
    def worker_ports(self) -> List[int]:
        """Each shard worker's TCP port (benchmark drivers connect direct)."""
        return [worker.port for worker in self._workers]

    def worker_alive(self, shard_id: int) -> bool:
        return self._workers[shard_id].alive

    def restart_shard(self, shard_id: int) -> None:
        """Replace a (dead or live) worker with a freshly spawned one.

        The replacement starts from an empty simulated device: worker
        state lives in process-private simulated storage, so a crash
        loses the shard's data.  Real durability would need the device
        state externalized or replicated — a ROADMAP item; what this
        gives is the serving-layer contract (``UNAVAILABLE`` while down,
        clean resume after restart).
        """
        old = self._workers[shard_id]
        old.shutdown(timeout=2.0)
        self._workers[shard_id] = self._spawn_worker(shard_id)

    # ------------------------------------------------------------------
    # Connection plumbing (mirrors KVServer)
    # ------------------------------------------------------------------
    def connect_loopback(self) -> LoopbackEndpoint:
        """A client endpoint relayed in-process to the shard workers."""
        client_side, server_side = loopback_pair()
        task = asyncio.ensure_future(self.handle_connection(server_side))
        self._connection_tasks.add(task)
        task.add_done_callback(self._connection_tasks.discard)
        return client_side

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        async def on_client(reader, writer):
            task = asyncio.current_task()
            if task is not None:
                self._connection_tasks.add(task)
                task.add_done_callback(self._connection_tasks.discard)
            try:
                await self.handle_connection(StreamEndpoint(reader, writer))
            except asyncio.CancelledError:
                pass

        self._tcp_server = await asyncio.start_server(on_client, host, port)
        return self._tcp_server

    @property
    def tcp_address(self) -> Tuple[str, int]:
        assert self._tcp_server is not None, "serve_tcp was not called"
        sock = self._tcp_server.sockets[0]
        address = sock.getsockname()
        return address[0], address[1]

    async def handle_connection(self, endpoint) -> None:
        """Relay one client connection to the shard workers."""
        relay = _ConnectionRelay(self, endpoint)
        try:
            await relay.run()
        finally:
            await relay.aclose()
            endpoint.close()

    def _assign_client_id(self, requested: int) -> int:
        if requested != 0:
            return requested
        client_id = self._next_anonymous_client
        self._next_anonymous_client += 1
        return client_id

    # ------------------------------------------------------------------
    # Introspection (control-pipe round-trips)
    # ------------------------------------------------------------------
    def state_digests(self) -> List[str]:
        """Per-shard on-storage digests, gathered from the workers."""
        return [worker.call("digest")[1] for worker in self._workers]

    def shard_sim_times(self) -> List[float]:
        return [worker.call("sim_time")[1] for worker in self._workers]

    def sim_now(self) -> float:
        return max(self.shard_sim_times())

    def total_ops(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for worker in self._workers:
            _, ops, _proto = worker.call("totals")
            for name, value in ops.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def worker_protocol_errors(self) -> int:
        """Bad frames seen by the workers (the CI smoke asserts 0)."""
        return sum(worker.call("totals")[2] for worker in self._workers)

    def metrics_text(self) -> str:
        """Cluster exposition: each worker merges its shard; texts join."""
        return "\n".join(
            worker.call("metrics")[1] for worker in self._workers
        )

    async def wait_idle(self) -> None:
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            if worker.alive:
                await loop.run_in_executor(None, worker.call, "wait_idle")

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.shutdown)

    def close(self) -> None:
        """Synchronous close for callers outside an event loop."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.shutdown()


class _ConnectionRelay:
    """Relays one client connection: frames out to workers, back in.

    One worker TCP connection is opened lazily per shard *per client
    connection* — request ids are only unique within a client, so
    multiplexing different clients onto one worker connection would
    collide them.  The relay introduces the client to each worker with
    a HELLO carrying the reserved :data:`RELAY_HELLO_ID`; the pump task
    filters that response out of the backward stream and forwards every
    other frame verbatim (no re-encode, no second CRC check — the frame
    was already verified at the relay's decoder).
    """

    def __init__(self, server: ProcessKVServer, endpoint) -> None:
        self._server = server
        self._endpoint = endpoint
        self._client_id = 0
        self._worker_endpoints: Dict[int, StreamEndpoint] = {}
        self._pumps: Dict[int, asyncio.Task] = {}
        #: Request ids forwarded to each shard and not yet answered; on a
        #: worker drop each one gets an UNAVAILABLE response instead of
        #: hanging the client's pipelined future forever.
        self._pending: Dict[int, Set[int]] = {}

    async def run(self) -> None:
        decoder = FrameDecoder()
        while True:
            chunk = await self._endpoint.read(65536)
            if not chunk:
                break
            try:
                decoder.feed(chunk)
                while True:
                    payload = decoder.next_frame()
                    if payload is None:
                        break
                    await self._relay_frame(payload)
            except FrameError:
                self._server.protocol_errors += 1
                break

    async def _relay_frame(self, payload: bytes) -> None:
        message = decode_payload(payload)
        if not isinstance(message, Request):
            raise FrameError("client sent a response payload")
        if message.op == Op.HELLO:
            self._client_id = self._server._assign_client_id(message.client_id)
            router = self._server.router
            self._send(
                Response(
                    request_id=message.request_id,
                    status=Status.OK,
                    client_id=self._client_id,
                    shard_count=router.num_shards,
                    boundaries=list(router.boundaries),
                )
            )
            return
        shard = message.shard
        if not 0 <= shard < self._server.config.shards:
            self._send(
                Response(
                    request_id=message.request_id,
                    status=Status.BAD_SHARD,
                    message=f"no shard {shard} "
                    f"(have {self._server.config.shards})",
                )
            )
            return
        worker_endpoint = self._worker_endpoints.get(shard)
        if worker_endpoint is None:
            worker_endpoint = await self._open_worker(shard)
            if worker_endpoint is None:
                self._send(self._unavailable(message.request_id, shard))
                return
        self._pending.setdefault(shard, set()).add(message.request_id)
        try:
            worker_endpoint.write(encode_frame(payload))
            await worker_endpoint.drain()
        except TransientNetError:
            # The pump task notices the drop and fails the pending set
            # (including this id) with UNAVAILABLE.
            pass

    async def _open_worker(self, shard: int) -> Optional[StreamEndpoint]:
        if not self._server.worker_alive(shard):
            return None
        port = self._server._workers[shard].port
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
        except (ConnectionError, OSError):
            return None
        worker_endpoint = StreamEndpoint(reader, writer)
        hello = Request(
            op=Op.HELLO, request_id=RELAY_HELLO_ID, client_id=self._client_id
        )
        try:
            worker_endpoint.write(encode_frame(hello.encode()))
            await worker_endpoint.drain()
        except TransientNetError:
            worker_endpoint.close()
            return None
        self._worker_endpoints[shard] = worker_endpoint
        self._pumps[shard] = asyncio.ensure_future(
            self._pump(shard, worker_endpoint)
        )
        return worker_endpoint

    async def _pump(self, shard: int, worker_endpoint: StreamEndpoint) -> None:
        """Forward worker → client frames, filtering the relay HELLO."""
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await worker_endpoint.read(65536)
                if not chunk:
                    break
                decoder.feed(chunk)
                while True:
                    payload = decoder.next_frame()
                    if payload is None:
                        break
                    request_id, _ = decode_varint64(payload, 1)
                    if payload[0] == Op.RESPONSE and request_id == RELAY_HELLO_ID:
                        continue  # the relay's own HELLO answer
                    pending = self._pending.get(shard)
                    if pending is not None:
                        pending.discard(request_id)
                    try:
                        self._endpoint.write(encode_frame(payload))
                        await self._endpoint.drain()
                    except TransientNetError:
                        return  # client gone; run() will wind down
        except (FrameError, TransientNetError, OSError):
            pass  # treated as a worker drop below
        finally:
            self._worker_endpoints.pop(shard, None)
            worker_endpoint.close()
            self._fail_pending(shard)

    def _fail_pending(self, shard: int) -> None:
        pending = self._pending.pop(shard, None)
        if not pending:
            return
        for request_id in sorted(pending):
            try:
                self._send(self._unavailable(request_id, shard))
            except TransientNetError:  # pragma: no cover - client gone too
                break

    def _unavailable(self, request_id: int, shard: int) -> Response:
        return Response(
            request_id=request_id,
            status=Status.UNAVAILABLE,
            message=f"shard {shard} worker is not running",
        )

    def _send(self, response: Response) -> None:
        self._endpoint.write(encode_frame(response.encode()))

    async def aclose(self) -> None:
        for task in list(self._pumps.values()):
            task.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()
        for worker_endpoint in list(self._worker_endpoints.values()):
            worker_endpoint.close()
        self._worker_endpoints.clear()


def make_server(config: Optional[ServerConfig] = None, *, serving_mode: str = "loopback", **overrides):
    """Build the server for a serving mode: KVServer or ProcessKVServer.

    ``"loopback"`` is the deterministic single-process asyncio server;
    ``"process"`` spawns one worker process per shard and relays.  Both
    accept the same config/overrides and serve the same protocol.
    """
    if serving_mode == "loopback":
        return KVServer(config, **overrides)
    if serving_mode == "process":
        return ProcessKVServer(config, **overrides)
    raise InvalidArgumentError(
        f"unknown serving_mode {serving_mode!r} (use 'loopback' or 'process')"
    )

"""Metadata persistence: file manifests and version edits.

Engines describe every metadata change — sstables added/removed, sequence
number high-water mark, and (for FLSM) guards committed or deleted — as a
:class:`VersionEdit` appended to a MANIFEST log.  Recovery replays the
MANIFEST and then the write-ahead log; PebblesDB's only addition over
LevelDB is the guard metadata riding in the same edits (paper section
4.3.1), which is exactly how we persist it.
"""

from repro.version.files import FileMetadata
from repro.version.manifest import (
    CURRENT_NAME,
    ManifestReader,
    ManifestWriter,
    VersionEdit,
    read_current,
    set_current,
)

__all__ = [
    "FileMetadata",
    "VersionEdit",
    "ManifestWriter",
    "ManifestReader",
    "CURRENT_NAME",
    "read_current",
    "set_current",
]

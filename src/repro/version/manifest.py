"""MANIFEST log: durable record of metadata changes.

Each :class:`VersionEdit` is one framed record in a MANIFEST file (reusing
the WAL framing).  The ``CURRENT`` file names the live MANIFEST and is
replaced atomically, so recovery always starts from a complete manifest.

Guard metadata (FLSM) travels in the same edits as file metadata, giving
guards the same crash-consistency guarantees as sstables — a guard is
committed exactly when the compaction that partitioned data by it commits
(paper sections 3.3 and 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import CorruptionError
from repro.sim.storage import IoAccount, SimulatedStorage
from repro.version.files import FileMetadata
from repro.util.varint import decode_varint32, decode_varint64, encode_varint32, encode_varint64
from repro.wal.log import LogReader, LogWriter

CURRENT_NAME = "CURRENT"

_TAG_LAST_SEQUENCE = 1
_TAG_NEXT_FILE = 2
_TAG_LOG_NUMBER = 3
_TAG_NEW_FILE = 4
_TAG_DELETED_FILE = 5
_TAG_NEW_GUARD = 6
_TAG_DELETED_GUARD = 7
_TAG_VLOG_DEAD = 8
_TAG_DELETED_VLOG = 9

#: Guard association of a new file: none (plain LSM level or Level 0),
#: the sentinel guard, or a named guard key.
GUARD_NONE = 0
GUARD_SENTINEL = 1
GUARD_KEY = 2


@dataclass
class VersionEdit:
    """One atomic batch of metadata changes."""

    last_sequence: Optional[int] = None
    next_file_number: Optional[int] = None
    log_number: Optional[int] = None
    #: (level, metadata, guard_marker, guard_key) — marker is one of the
    #: GUARD_* constants; guard_key is b"" unless marker == GUARD_KEY.
    new_files: List[Tuple[int, FileMetadata, int, bytes]] = field(default_factory=list)
    deleted_files: List[Tuple[int, int]] = field(default_factory=list)
    new_guards: List[Tuple[int, bytes]] = field(default_factory=list)
    deleted_guards: List[Tuple[int, bytes]] = field(default_factory=list)
    #: Value-log liveness deltas ``(segment, dead_bytes_added)`` and
    #: retired segments.  Empty lists encode to nothing, so stores with
    #: separation disabled produce byte-identical MANIFESTs to before
    #: these tags existed.
    vlog_dead: List[Tuple[int, int]] = field(default_factory=list)
    deleted_vlog_segments: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_file(
        self,
        level: int,
        meta: FileMetadata,
        guard_marker: int = GUARD_NONE,
        guard_key: bytes = b"",
    ) -> None:
        self.new_files.append((level, meta, guard_marker, guard_key))

    def delete_file(self, level: int, number: int) -> None:
        self.deleted_files.append((level, number))

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        buf = bytearray()
        if self.last_sequence is not None:
            buf.append(_TAG_LAST_SEQUENCE)
            buf += encode_varint64(self.last_sequence)
        if self.next_file_number is not None:
            buf.append(_TAG_NEXT_FILE)
            buf += encode_varint64(self.next_file_number)
        if self.log_number is not None:
            buf.append(_TAG_LOG_NUMBER)
            buf += encode_varint64(self.log_number)
        for level, meta, marker, guard_key in self.new_files:
            buf.append(_TAG_NEW_FILE)
            buf += encode_varint32(level)
            buf.append(marker)
            if marker == GUARD_KEY:
                buf += encode_varint32(len(guard_key))
                buf += guard_key
            buf += meta.encode()
        for level, number in self.deleted_files:
            buf.append(_TAG_DELETED_FILE)
            buf += encode_varint32(level)
            buf += encode_varint64(number)
        for level, key in self.new_guards:
            buf.append(_TAG_NEW_GUARD)
            buf += encode_varint32(level)
            buf += encode_varint32(len(key))
            buf += key
        for level, key in self.deleted_guards:
            buf.append(_TAG_DELETED_GUARD)
            buf += encode_varint32(level)
            buf += encode_varint32(len(key))
            buf += key
        for segment, dead in self.vlog_dead:
            buf.append(_TAG_VLOG_DEAD)
            buf += encode_varint64(segment)
            buf += encode_varint64(dead)
        for segment in self.deleted_vlog_segments:
            buf.append(_TAG_DELETED_VLOG)
            buf += encode_varint64(segment)
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "VersionEdit":
        edit = cls()
        offset = 0
        while offset < len(data):
            tag = data[offset]
            offset += 1
            if tag == _TAG_LAST_SEQUENCE:
                edit.last_sequence, offset = decode_varint64(data, offset)
            elif tag == _TAG_NEXT_FILE:
                edit.next_file_number, offset = decode_varint64(data, offset)
            elif tag == _TAG_LOG_NUMBER:
                edit.log_number, offset = decode_varint64(data, offset)
            elif tag == _TAG_NEW_FILE:
                level, offset = decode_varint32(data, offset)
                if offset >= len(data):
                    raise CorruptionError("version edit truncated (guard marker)")
                marker = data[offset]
                offset += 1
                guard_key = b""
                if marker == GUARD_KEY:
                    glen, offset = decode_varint32(data, offset)
                    guard_key = data[offset : offset + glen]
                    if len(guard_key) != glen:
                        raise CorruptionError("version edit truncated (guard key)")
                    offset += glen
                elif marker not in (GUARD_NONE, GUARD_SENTINEL):
                    raise CorruptionError(f"bad guard marker: {marker}")
                meta, offset = FileMetadata.decode(data, offset)
                edit.new_files.append((level, meta, marker, guard_key))
            elif tag == _TAG_DELETED_FILE:
                level, offset = decode_varint32(data, offset)
                number, offset = decode_varint64(data, offset)
                edit.deleted_files.append((level, number))
            elif tag in (_TAG_NEW_GUARD, _TAG_DELETED_GUARD):
                level, offset = decode_varint32(data, offset)
                klen, offset = decode_varint32(data, offset)
                key = data[offset : offset + klen]
                if len(key) != klen:
                    raise CorruptionError("version edit truncated (guard)")
                offset += klen
                if tag == _TAG_NEW_GUARD:
                    edit.new_guards.append((level, key))
                else:
                    edit.deleted_guards.append((level, key))
            elif tag == _TAG_VLOG_DEAD:
                segment, offset = decode_varint64(data, offset)
                dead, offset = decode_varint64(data, offset)
                edit.vlog_dead.append((segment, dead))
            elif tag == _TAG_DELETED_VLOG:
                segment, offset = decode_varint64(data, offset)
                edit.deleted_vlog_segments.append(segment)
            else:
                raise CorruptionError(f"unknown version edit tag: {tag}")
        return edit


class ManifestWriter:
    """Appends version edits to a MANIFEST file."""

    def __init__(self, storage: SimulatedStorage, name: str) -> None:
        self._log = LogWriter(storage, name)
        self.name = name

    def append(self, edit: VersionEdit, account: IoAccount, *, sync: bool = True) -> None:
        self._log.append(edit.encode(), account, sync=sync)


class ManifestReader:
    """Replays the version edits of a MANIFEST file.

    Replay is *strict* by default: every committed edit is synced before
    its installation is acknowledged, so a corrupt record below the
    file's durable boundary means version metadata was lost — silently
    stopping there would recover a stale-but-plausible version and serve
    old data.  Damage at or past the boundary is a torn tail from a
    crash mid-append and ends replay normally.
    """

    def __init__(self, storage: SimulatedStorage, name: str) -> None:
        self._storage = storage
        self.name = name

    def edits(self, account: IoAccount, *, strict: bool = True):
        reader = LogReader(self._storage, self.name)
        for record in reader.records(account, strict=strict):
            yield VersionEdit.decode(record)


def set_current(
    storage: SimulatedStorage, manifest_name: str, account: IoAccount, prefix: str = ""
) -> None:
    """Atomically point CURRENT at ``manifest_name``."""
    current = prefix + CURRENT_NAME
    tmp = current + ".tmp"
    if storage.exists(tmp):
        storage.delete(tmp)
    storage.create(tmp)
    storage.append(tmp, manifest_name.encode("utf-8"), account)
    storage.sync(tmp, account)
    storage.rename(tmp, current)


def read_current(
    storage: SimulatedStorage, account: IoAccount, prefix: str = ""
) -> Optional[str]:
    """Name of the live MANIFEST, or None for a fresh store."""
    current = prefix + CURRENT_NAME
    if not storage.exists(current):
        return None
    raw = storage.read(current, 0, storage.size(current), account, sequential=True)
    name = raw.decode("utf-8")
    if not name:
        raise CorruptionError("empty CURRENT file")
    return name

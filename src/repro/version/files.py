"""Per-sstable metadata tracked by the version system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CorruptionError
from repro.util.keys import InternalKey, pack_internal_key, unpack_internal_key
from repro.util.varint import decode_varint32, decode_varint64, encode_varint32, encode_varint64


@dataclass
class FileMetadata:
    """Everything the engine needs to know about one sstable on storage.

    ``allowed_seeks`` implements LevelDB/PebblesDB seek-based compaction: it
    is decremented when a seek touches the file and a compaction of the
    file's guard/level is requested when it reaches zero (paper section
    4.2).  It is derived from file size (one seek "charge" per 16 KiB) and
    is not persisted — recovery recomputes it.
    """

    number: int
    smallest: InternalKey
    largest: InternalKey
    file_size: int
    num_entries: int
    allowed_seeks: int = field(default=0)

    def __post_init__(self) -> None:
        if self.allowed_seeks == 0:
            self.allowed_seeks = max(100, self.file_size // (16 * 1024))

    @property
    def name(self) -> str:
        return sstable_name(self.number)

    def overlaps(self, lo: Optional[bytes], hi: Optional[bytes]) -> bool:
        """Whether the file's user-key range intersects ``[lo, hi]``.

        ``None`` bounds are open.
        """
        if lo is not None and self.largest.user_key < lo:
            return False
        if hi is not None and self.smallest.user_key > hi:
            return False
        return True

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        smallest = pack_internal_key(self.smallest)
        largest = pack_internal_key(self.largest)
        return (
            encode_varint64(self.number)
            + encode_varint32(len(smallest))
            + smallest
            + encode_varint32(len(largest))
            + largest
            + encode_varint64(self.file_size)
            + encode_varint64(self.num_entries)
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "tuple[FileMetadata, int]":
        number, offset = decode_varint64(data, offset)
        slen, offset = decode_varint32(data, offset)
        if offset + slen > len(data):
            raise CorruptionError("file metadata truncated (smallest)")
        smallest = unpack_internal_key(data[offset : offset + slen])
        offset += slen
        llen, offset = decode_varint32(data, offset)
        if offset + llen > len(data):
            raise CorruptionError("file metadata truncated (largest)")
        largest = unpack_internal_key(data[offset : offset + llen])
        offset += llen
        file_size, offset = decode_varint64(data, offset)
        num_entries, offset = decode_varint64(data, offset)
        return cls(number, smallest, largest, file_size, num_entries), offset


def sstable_name(number: int) -> str:
    """Canonical file name of sstable ``number``."""
    return f"{number:06d}.sst"
